//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] names a scenario, the seeds to sweep, and a
//! [`ScenarioKind`] describing *what* to measure. Protocol scenarios are a
//! matrix of substrates × topologies × adversary scripts — the shape of the
//! paper's evaluation (§7) — and each analytic scenario kind captures one of
//! the non-simulation figures (candidate-set timing, SA search budgets,
//! proposal sizes, over-provisioning, the targeted-suspicion attack).
//!
//! The grid expands into [`Point`]s (parameter combinations); each point ×
//! seed is a *cell*, and [`ScenarioSpec::run_cell`] — a pure function of the
//! spec, the point, and the seed — produces that cell's [`CellMetrics`]. The
//! sweep runner fans cells across worker threads; determinism is guaranteed
//! because no state is shared between cells and each cell derives its RNG
//! stream from `mix_seed(seed, point)`.

use crate::adversary::{AdversaryScript, CompileContext};
use crate::harness::{run_hotstuff, run_kauri, PbftHarness, PbftHarnessConfig};
use crate::results::{ci95, mean, timeline_mean, CellMetrics};
use crate::topology::Topology;
use hotstuff::{HotStuffConfig, Pacemaker};
use kauri::{KauriBinsPolicy, KauriConfig, TreePolicy};
use netsim::{Duration, MatrixLatency, SimTime};
use optiaware::OptiAwarePolicy;
use optilog::{AnnealingParams, CandidateSelector, SelectionStrategy, SuspicionGraph};
use optitree::{
    search_tree, simulate_suspicion_attack, tree_score, AttackVariant, KauriSaPolicy,
    OptiTreePolicy, TreeSearchSpace,
};
use pbft::{AwarePolicy, ReconfigPolicy, StaticPolicy};
use rand::rngs::StdRng;
use rand::seq::index;
use rand::{Rng, SeedableRng};
use rsm::{SystemConfig, TrafficSpec, WorkloadSpec};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use telemetry::Telemetry;
use traffic::{ForwardingModel, SharedTrafficQueue, TrafficQueue};

/// Derive an independent RNG seed for a cell from the sweep seed and a salt
/// (SplitMix64 finaliser), so cells never share RNG streams across threads.
pub fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sample `count` distinct seeds from `0..pool`, deterministically from a
/// master seed — the sweep sampler for "N random seeds" scenarios.
pub fn sample_seeds(pool: u64, count: usize, master_seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(master_seed);
    index::sample(&mut rng, pool as usize, count.min(pool as usize))
        .into_iter()
        .map(|i| i as u64)
        .collect()
}

/// The consensus substrate a protocol scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Substrate {
    /// Static PBFT (BFT-SMaRt): never reconfigures.
    BftSmart,
    /// Aware: deterministic latency optimisation, no suspicion handling.
    Aware,
    /// OptiAware: Aware + the OptiLog suspicion pipeline (§5).
    OptiAware,
    /// Chained HotStuff with a fixed leader.
    HotStuffFixed,
    /// Chained HotStuff with round-robin leaders.
    HotStuffRr,
    /// Kauri with random conformity-bin trees and pipelining.
    Kauri,
    /// Kauri with SA-optimised trees but no candidate set (§7.5 baseline).
    KauriSa,
    /// OptiTree with pipelining (§6).
    OptiTree,
    /// OptiTree without pipelining (Fig 11 / Fig 15 configuration).
    OptiTreeNoPipeline,
}

impl Substrate {
    /// Human-readable label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Substrate::BftSmart => "BFT-SMaRt",
            Substrate::Aware => "Aware",
            Substrate::OptiAware => "OptiAware",
            Substrate::HotStuffFixed => "HotStuff-fixed",
            Substrate::HotStuffRr => "HotStuff-rr",
            Substrate::Kauri => "Kauri",
            Substrate::KauriSa => "Kauri-sa",
            Substrate::OptiTree => "OptiTree",
            Substrate::OptiTreeNoPipeline => "OptiTree (no pipeline)",
        }
    }

    /// True for the PBFT-family substrates (client-driven, reconfig policies).
    pub fn is_pbft(&self) -> bool {
        matches!(
            self,
            Substrate::BftSmart | Substrate::Aware | Substrate::OptiAware
        )
    }

    /// True for the tree-overlay substrates.
    pub fn is_tree(&self) -> bool {
        matches!(
            self,
            Substrate::Kauri
                | Substrate::KauriSa
                | Substrate::OptiTree
                | Substrate::OptiTreeNoPipeline
        )
    }

    /// True if the substrate implements the protocol-level proposal-delay
    /// behaviour (`Attack::DelayProposals`). Every current substrate does —
    /// the PBFT family through `ReplicaBehavior::DelayPropose`, HotStuff and
    /// the trees through `rsm::MisbehaviorPlan`. The match is deliberately
    /// exhaustive: adding a substrate forces an explicit decision here, and
    /// answering `false` makes adversary compilation fail loudly instead of
    /// silently substituting a network-level delay (see
    /// `AdversaryScript::compile`).
    pub fn protocol_delay_supported(&self) -> bool {
        match self {
            Substrate::BftSmart
            | Substrate::Aware
            | Substrate::OptiAware
            | Substrate::HotStuffFixed
            | Substrate::HotStuffRr
            | Substrate::Kauri
            | Substrate::KauriSa
            | Substrate::OptiTree
            | Substrate::OptiTreeNoPipeline => true,
        }
    }

    fn pbft_policy(
        &self,
        id: usize,
        n: usize,
        f: usize,
        optimize_after: SimTime,
    ) -> Box<dyn ReconfigPolicy> {
        match self {
            Substrate::BftSmart => Box::new(StaticPolicy),
            Substrate::Aware => Box::new(AwarePolicy::new(n, f, optimize_after)),
            Substrate::OptiAware => Box::new(OptiAwarePolicy::new(id, n, f, 1.0, optimize_after)),
            other => panic!("{} is not a PBFT substrate", other.label()),
        }
    }

    /// Build this substrate's tree policy (tree substrates only).
    pub(crate) fn tree_policy(&self, n: usize, rtt: Vec<f64>, seed: u64) -> Box<dyn TreePolicy> {
        let system = SystemConfig::new(n);
        match self {
            Substrate::Kauri => {
                Box::new(KauriBinsPolicy::new(n, system.tree_branch_factor(), seed))
            }
            Substrate::KauriSa => Box::new(KauriSaPolicy::new(system, rtt, seed)),
            Substrate::OptiTree | Substrate::OptiTreeNoPipeline => {
                Box::new(OptiTreePolicy::new(system, rtt, seed))
            }
            other => panic!("{} is not a tree substrate", other.label()),
        }
    }
}

/// A named virtual-time window over which client latency is averaged
/// (the Fig 7 phases: pre-optimisation, optimised, under attack, recovered).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyWindow {
    /// Metric suffix (`lat_<label>_ms`).
    pub label: String,
    /// Window start, seconds of virtual time.
    pub from_s: f64,
    /// Window end (exclusive), seconds.
    pub to_s: f64,
}

impl LatencyWindow {
    /// Create a window.
    pub fn new(label: impl Into<String>, from_s: f64, to_s: f64) -> Self {
        LatencyWindow {
            label: label.into(),
            from_s,
            to_s,
        }
    }
}

/// A matrix of simulation runs: substrates × topologies × adversaries.
#[derive(Debug, Clone)]
pub struct ProtocolScenario {
    /// Substrate axis.
    pub substrates: Vec<Substrate>,
    /// Topology axis.
    pub topologies: Vec<Topology>,
    /// Adversary axis (use `AdversaryScript::clean()` for fault-free runs).
    pub adversaries: Vec<AdversaryScript>,
    /// Virtual run duration.
    pub duration: Duration,
    /// The client/batch workload (saturated source; used when the traffic
    /// axis is empty).
    pub workload: WorkloadSpec,
    /// Offered-load axis. Empty = the paper's saturated workload. Non-empty
    /// = every cell drives its substrate from an open-loop traffic queue
    /// compiled from the cell's [`TrafficSpec`] — *every* substrate consumes
    /// the queue; there is no per-substrate fallback to a saturated source.
    pub traffics: Vec<TrafficSpec>,
    /// When measurement-driven policies may first reconfigure.
    pub optimize_after: SimTime,
    /// Delay between a tree failure and the next root resuming (models the
    /// configuration search, e.g. 1 s of simulated annealing).
    pub reconfig_delay: Option<Duration>,
    /// Client-latency windows to report (PBFT substrates).
    pub windows: Vec<LatencyWindow>,
}

impl ProtocolScenario {
    /// A fault-free scenario over the given axes with the paper's defaults.
    pub fn new(substrates: Vec<Substrate>, topologies: Vec<Topology>) -> Self {
        ProtocolScenario {
            substrates,
            topologies,
            adversaries: vec![AdversaryScript::clean()],
            duration: Duration::from_secs(120),
            workload: WorkloadSpec::saturated(),
            traffics: Vec::new(),
            optimize_after: SimTime::from_secs(40),
            reconfig_delay: None,
            windows: Vec::new(),
        }
    }

    /// Replace the adversary axis.
    pub fn with_adversaries(mut self, adversaries: Vec<AdversaryScript>) -> Self {
        assert!(!adversaries.is_empty(), "adversary axis must be non-empty");
        self.adversaries = adversaries;
        self
    }

    /// Add an offered-load axis: every cell pulls proposals from an
    /// open-loop traffic queue instead of the saturated source.
    pub fn with_traffic_axis(mut self, traffics: Vec<TrafficSpec>) -> Self {
        assert!(!traffics.is_empty(), "traffic axis must be non-empty");
        self.traffics = traffics;
        self
    }

    /// Override the run duration.
    pub fn run_for(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    fn points(&self) -> Vec<Point> {
        // The traffic axis is optional: an empty list contributes one
        // "no-traffic" slot so the grid shape is unchanged for saturated
        // scenarios (and their point indices stay three-element).
        let traffic_axis: Vec<Option<usize>> = if self.traffics.is_empty() {
            vec![None]
        } else {
            (0..self.traffics.len()).map(Some).collect()
        };
        let mut out = Vec::new();
        for (si, s) in self.substrates.iter().enumerate() {
            for (ti, t) in self.topologies.iter().enumerate() {
                for (ai, a) in self.adversaries.iter().enumerate() {
                    for tri in &traffic_axis {
                        let mut parts = Vec::new();
                        if self.substrates.len() > 1 {
                            parts.push(s.label().to_string());
                        }
                        if self.topologies.len() > 1 {
                            parts.push(t.label());
                        }
                        if self.adversaries.len() > 1 {
                            parts.push(a.label.clone());
                        }
                        if self.traffics.len() > 1 {
                            parts.push(self.traffics[tri.expect("axis present")].label());
                        }
                        let label = if parts.is_empty() {
                            s.label().to_string()
                        } else {
                            parts.join(" | ")
                        };
                        let mut params = BTreeMap::from([
                            ("substrate".to_string(), s.label().to_string()),
                            ("topology".to_string(), t.label()),
                            ("adversary".to_string(), a.label.clone()),
                        ]);
                        let mut idx = vec![si, ti, ai];
                        if let Some(tri) = tri {
                            params.insert("traffic".to_string(), self.traffics[*tri].label());
                            idx.push(*tri);
                        }
                        out.push(Point { label, params, idx });
                    }
                }
            }
        }
        out
    }

    /// Run one cell with an explicit telemetry handle. Every cell records
    /// metrics (the recording tier is always on), so installing a trace sink
    /// on top can never change the registry — the foundation of the
    /// traced-vs-untraced BENCH byte-identity guarantee.
    pub fn run_cell_with(&self, point: &Point, seed: u64, telemetry: &Telemetry) -> CellMetrics {
        // Windowed time-series sampling on a 1 s simulated-time cadence: the
        // netsim engine ticks the sampler at virtual-second boundaries, so
        // window contents depend only on the event sequence — identical
        // across `--threads` and across traced/untraced runs.
        telemetry.install_timeseries(1_000_000);
        let (substrate, topology, adversary) = (
            self.substrates[point.idx[0]],
            self.topologies[point.idx[1]],
            &self.adversaries[point.idx[2]],
        );
        let n = topology.n;
        let f = topology.f();
        let rtt = topology.rtt_matrix(seed);
        let policy_seed = mix_seed(seed, point.idx[0] as u64 + 1);
        let compiled = adversary.compile(&CompileContext {
            n,
            f,
            rtt: &rtt,
            horizon: SimTime::ZERO + self.duration,
            substrate,
            policy_seed,
        });
        let run_secs = self.duration.as_micros() / 1_000_000;

        // Offered-load cells compile their TrafficSpec into a per-run queue:
        // geo-placed clients (same city subset and replica placement as the
        // topology's RTT matrix) feeding the leader-side admission queue
        // every substrate pulls batches from.
        let traffic = point.idx.get(3).map(|&tri| {
            let spec = &self.traffics[tri];
            let placed = topology.place_clients(spec.clients, seed, mix_seed(seed, 0xC11E_9701));
            let ingress: Vec<f64> = placed.iter().map(|p| p.ingress_ms).collect();
            let nearest: Vec<usize> = placed.iter().map(|p| p.nearest).collect();
            // Requests entering through a non-leader replica pay the explicit
            // ingress→leader forwarding hop on top of consensus latency.
            let queue = TrafficQueue::generate(
                spec,
                &ingress,
                mix_seed(seed, 0x7AFF_1C00),
                SimTime::ZERO + self.duration,
            )
            .with_forwarding(ForwardingModel::from_rtt(nearest, &rtt, n));
            let shared = SharedTrafficQueue::new(queue);
            shared.set_telemetry(telemetry.clone());
            shared
        });

        let mut metrics = CellMetrics::new();
        // The post-cell consensus auditor: each branch feeds it the exact
        // per-replica checkpoint histories its harness collected; after the
        // branch it balances conservation against the registry and lands its
        // verdict in the cell as `audit.*` gauges (deterministic inputs, so
        // BENCH json stays byte-identical across `--threads`).
        let mut auditor = audit::Auditor::new();
        // Every branch produces a latency-window closure, so `LatencyWindow`
        // metrics work uniformly across substrates: the PBFT family reports
        // client-observed latency (its clients are part of the simulation),
        // HotStuff and the trees report the per-commit consensus-latency
        // timeline their runners now expose.
        let window_mean: Box<dyn Fn(f64, f64) -> f64> = if substrate.is_pbft() {
            // Open-loop cells replace the simulated closed-loop clients with
            // the traffic queue's geo-placed population.
            let clients = if traffic.is_some() {
                0
            } else {
                self.workload.clients_for(n)
            };
            let mut cfg = PbftHarnessConfig::new(n, f, clients, rtt.clone())
                .run_for(self.duration)
                .with_faults(compiled.faults.clone());
            cfg.telemetry = telemetry.clone();
            if let Some(queue) = &traffic {
                cfg = cfg.with_traffic(queue.clone());
            }
            for atk in &compiled.delay_attacks {
                cfg = cfg.with_delay_attacker_during(atk.replica, atk.delay, atk.from, atk.until);
            }
            let optimize_after = self.optimize_after;
            let report = PbftHarness::run(&cfg, substrate.label(), |id| {
                substrate.pbft_policy(id, n, f, optimize_after)
            });
            for (replica, cps) in report.commit_checkpoints.iter().enumerate() {
                for &(seq, fp) in cps {
                    auditor.record_checkpoint("pbft", replica, seq, fp);
                }
            }
            let s = &report.replica_summary;
            metrics
                .set("throughput_ops", s.throughput_ops)
                .set("sustained_ops", s.sustained_ops)
                .set("latency_ms", s.mean_latency_ms)
                .set("p50_ms", s.p50_latency_ms)
                .set("p99_ms", s.p99_latency_ms)
                .set("blocks", s.committed_blocks as f64)
                .set(
                    "client_ops",
                    report.client_completed.iter().sum::<u64>() as f64,
                )
                .set("reconfigurations", report.reconfigurations.len() as f64);
            Box::new(move |from, to| report.mean_client_latency(from, to))
        } else if substrate.is_tree() {
            let mut cfg = KauriConfig::new(n);
            cfg.run_for = self.duration;
            cfg.batch_size = self.workload.batch_size;
            cfg.traffic = traffic.clone();
            cfg.telemetry = telemetry.clone();
            if substrate == Substrate::OptiTreeNoPipeline {
                cfg.pipeline = 1;
            }
            if let Some(d) = self.reconfig_delay {
                cfg.reconfig_delay = d;
            }
            for atk in &compiled.delay_attacks {
                cfg.misbehavior
                    .delay_proposals_during(atk.replica, atk.delay, atk.from, atk.until);
            }
            // The run's initial tree, reproduced through the same seeded
            // policy: the reference for the role-retention metrics below.
            let initial_tree = substrate
                .tree_policy(n, rtt.clone(), policy_seed)
                .next_tree(n, SystemConfig::new(n).tree_branch_factor());
            let rtt_for_policy = rtt.clone();
            let report = run_kauri(
                &cfg,
                Box::new(MatrixLatency::from_rtt_millis(n, &rtt)),
                compiled.faults.clone(),
                move |_| substrate.tree_policy(n, rtt_for_policy.clone(), policy_seed),
            );
            for (replica, cps) in report.config_checkpoints.iter().enumerate() {
                for &(epoch, chain) in cps {
                    auditor.record_checkpoint("kauri.config", replica, epoch, chain);
                }
            }
            auditor.check_provenance(&report.config_commands);
            let s = &report.summary;
            metrics
                .set("throughput_ops", s.throughput_ops)
                .set("sustained_ops", s.sustained_ops)
                .set("latency_ms", s.mean_latency_ms)
                .set("p50_ms", s.p50_latency_ms)
                .set("p99_ms", s.p99_latency_ms)
                .set("blocks", s.committed_blocks as f64)
                .set("reconfigurations", report.reconfigurations as f64);
            // Role bookkeeping from the configuration log: the suspicion-
            // pair evidence committed through it, the policy's exclusions,
            // and whether roles survived where they should (an innocent
            // root keeps its role; a scripted delayer does not keep an
            // internal position).
            let yes_no = |b: bool| if b { 1.0 } else { 0.0 };
            metrics
                .set("committed_pairs", report.committed_pairs.len() as f64)
                .set("adopted_epochs", report.adopted_epochs as f64)
                .set("excluded_count", report.excluded.len() as f64)
                .set(
                    "root_retained",
                    yes_no(report.final_tree.root == initial_tree.root),
                )
                .set(
                    "initial_root_excluded",
                    yes_no(report.excluded.contains(&initial_tree.root)),
                );
            if let Some(atk) = compiled.delay_attacks.first() {
                metrics
                    .set(
                        "attacker_excluded",
                        yes_no(report.excluded.contains(&atk.replica)),
                    )
                    .set(
                        "attacker_internal_final",
                        yes_no(report.final_tree.internal_nodes().contains(&atk.replica)),
                    )
                    .set(
                        "pairs_accuse_attacker",
                        yes_no(
                            report
                                .committed_pairs
                                .iter()
                                .any(|p| !p.reciprocal && p.accused == atk.replica),
                        ),
                    );
            }
            metrics.set_series(
                "throughput_timeline",
                report
                    .throughput_timeline
                    .iter()
                    .enumerate()
                    .map(|(sec, &ops)| (sec as f64, ops as f64))
                    .collect(),
            );
            metrics.set_series("latency_timeline", report.latency_timeline.clone());
            let tl = report.latency_timeline;
            Box::new(move |from, to| timeline_mean(&tl, from, to))
        } else {
            let pacemaker = match substrate {
                Substrate::HotStuffFixed => Pacemaker::Fixed { leader: 0 },
                _ => Pacemaker::RoundRobin,
            };
            let mut cfg = HotStuffConfig::new(n, pacemaker);
            cfg.run_for = self.duration;
            cfg.batch_size = self.workload.batch_size;
            cfg.traffic = traffic.clone();
            cfg.telemetry = telemetry.clone();
            for atk in &compiled.delay_attacks {
                cfg.misbehavior
                    .delay_proposals_during(atk.replica, atk.delay, atk.from, atk.until);
            }
            let report = run_hotstuff(
                &cfg,
                Box::new(MatrixLatency::from_rtt_millis(n, &rtt)),
                compiled.faults.clone(),
            );
            for (replica, cps) in report.commit_checkpoints.iter().enumerate() {
                for &(view, fp) in cps {
                    auditor.record_checkpoint("hotstuff", replica, view, fp);
                }
            }
            let s = &report.summary;
            metrics
                .set("throughput_ops", s.throughput_ops)
                .set("sustained_ops", s.sustained_ops)
                .set("latency_ms", s.mean_latency_ms)
                .set("p50_ms", s.p50_latency_ms)
                .set("p99_ms", s.p99_latency_ms)
                .set("blocks", s.committed_blocks as f64)
                .set("views", report.views as f64);
            metrics.set_series("latency_timeline", report.latency_timeline.clone());
            let tl = report.latency_timeline;
            Box::new(move |from, to| timeline_mean(&tl, from, to))
        };
        if let Some(queue) = &traffic {
            // Client-side metrics: offered vs committed vs goodput, the
            // end-to-end latency distribution, and queue-pressure evidence.
            let tr = queue.report(run_secs);
            metrics
                .set("offered_ops", tr.offered_ops)
                .set("committed_ops", tr.committed_ops)
                .set("goodput_ops", tr.goodput_ops)
                .set("rejected", tr.rejected as f64)
                .set("e2e_mean_ms", tr.e2e_mean_ms)
                .set("e2e_p50_ms", tr.e2e_p50_ms)
                .set("e2e_p99_ms", tr.e2e_p99_ms)
                .set("queue_depth_max", tr.max_depth as f64);
            // In traffic mode, latency windows measure what the *client*
            // sees — uniformly across substrates — and each window also
            // reports its goodput rate. (Windows first: the timelines are
            // moved, not re-cloned, into the series afterwards — the e2e
            // timeline holds one point per command.)
            for w in &self.windows {
                metrics.set(
                    format!("lat_{}_ms", w.label),
                    timeline_mean(&tr.e2e_timeline, w.from_s, w.to_s),
                );
                let in_window: f64 = tr
                    .goodput_timeline
                    .iter()
                    .filter(|&&(t, _)| t >= w.from_s && t < w.to_s)
                    .map(|&(_, v)| v)
                    .sum();
                metrics.set(
                    format!("goodput_{}_ops", w.label),
                    in_window / (w.to_s - w.from_s).max(1e-9),
                );
            }
            metrics.set_series("e2e_timeline", tr.e2e_timeline);
            metrics.set_series("goodput_timeline", tr.goodput_timeline);
            metrics.set_series("queue_depth_timeline", tr.depth_timeline);
        } else {
            for w in &self.windows {
                metrics.set(format!("lat_{}_ms", w.label), window_mean(w.from_s, w.to_s));
            }
        }
        // Finish the audit before draining the registry: the final strict
        // conservation pass runs against the settled registry, and the
        // published `audit.*` gauges land in the drain below like any other
        // metric (surfacing the verdict in BENCH json).
        let audit_report = auditor.finish(&telemetry.registry_snapshot());
        audit_report.publish(telemetry);
        // Drain the telemetry registry into the cell: counters summed and
        // gauges maxed across replicas, histograms merged (the log-linear
        // buckets make the merge order-independent). All values are
        // simulated-time quantities, so the drained metrics — and therefore
        // BENCH json — stay byte-identical across `--threads` and across
        // traced/untraced runs.
        let registry = telemetry.registry_snapshot();
        let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
        for (key, v) in registry.counters() {
            *counters.entry(key.name.as_str()).or_default() += v;
        }
        for (name, v) in counters {
            metrics.set(name, v as f64);
        }
        let mut gauges: BTreeMap<&str, f64> = BTreeMap::new();
        for (key, v) in registry.gauges() {
            let slot = gauges.entry(key.name.as_str()).or_insert(f64::NEG_INFINITY);
            *slot = slot.max(v);
        }
        for (name, v) in gauges {
            metrics.set(name, v);
        }
        let hist_names: std::collections::BTreeSet<String> = registry
            .histograms()
            .map(|(key, _)| key.name.clone())
            .collect();
        for name in hist_names {
            let merged = registry.merged_histogram(&name);
            if merged.count() == 0 {
                continue;
            }
            metrics
                .set(format!("{name}.count"), merged.count() as f64)
                .set(format!("{name}.mean"), merged.mean())
                .set(format!("{name}.p50"), merged.p50() as f64)
                .set(format!("{name}.p99"), merged.p99() as f64);
        }
        // Drain the closed time-series windows as `ts.*` cell series —
        // per-window counter deltas, gauge values, and histogram increments
        // over simulated time, landing in BENCH json next to the timelines.
        if let Some(ts) = telemetry.timeseries_snapshot() {
            for (name, points) in ts.series() {
                metrics.set_series(name, points);
            }
        }
        metrics
    }

    /// Run one cell with a trace sink, attribute every committed command's
    /// e2e latency from the captured spans, and append the critical-path
    /// breakdown to the cell metrics (the `--breakdown` sweep mode).
    ///
    /// End-to-end latency only exists where clients do: a scenario running
    /// the saturated workload (no traffic axis) gets the same default
    /// open-loop load [`ScenarioSpec::run_cell_traced`] injects, so every
    /// sweep has a commit path to attribute. Per-cell sinks are
    /// thread-independent, so breakdown-bearing BENCH json stays
    /// byte-identical across `--threads`.
    pub fn run_cell_breakdown(&self, point: &Point, seed: u64) -> CellMetrics {
        let telemetry = Telemetry::tracing();
        let mut metrics = if self.traffics.is_empty() {
            let mut loaded = self.clone();
            loaded.traffics = vec![TrafficSpec::poisson(300.0)
                .with_clients(16)
                .with_batching(60, Duration::from_millis(40))];
            let mut point = point.clone();
            point.idx.push(0);
            loaded.run_cell_with(&point, seed, &telemetry)
        } else {
            self.run_cell_with(point, seed, &telemetry)
        };
        let paths = telemetry.command_paths();
        append_breakdown_metrics(&mut metrics, &paths, &self.windows);
        metrics
    }
}

/// Fold attributed [`CommandPath`]s into `breakdown.*` cell metrics: the
/// whole-run per-phase quantiles and shares, plus per-[`LatencyWindow`]
/// phase means (commands bucketed by commit instant) so an attack window's
/// anatomy is directly comparable against the clean windows around it.
pub fn append_breakdown_metrics(
    metrics: &mut CellMetrics,
    paths: &[telemetry::CommandPath],
    windows: &[LatencyWindow],
) {
    use telemetry::{LatencyBreakdown, Phase};
    let all = LatencyBreakdown::from_paths(paths.iter());
    metrics.set("breakdown.commands", all.count() as f64);
    for row in all.rows() {
        metrics
            .set(format!("breakdown.{}.mean_ms", row.phase), row.mean_ms)
            .set(format!("breakdown.{}.p50_ms", row.phase), row.p50_ms)
            .set(format!("breakdown.{}.p99_ms", row.phase), row.p99_ms)
            .set(format!("breakdown.{}.share", row.phase), row.share);
    }
    for w in windows {
        let wb = LatencyBreakdown::from_paths(
            paths
                .iter()
                .filter(|p| p.committed_s >= w.from_s && p.committed_s < w.to_s),
        );
        metrics.set(format!("breakdown.{}.commands", w.label), wb.count() as f64);
        metrics.set(
            format!("breakdown.{}.e2e_p99_ms", w.label),
            wb.e2e().p99() as f64 / 1e3,
        );
        for phase in Phase::ALL {
            metrics.set(
                format!("breakdown.{}.{}.mean_ms", w.label, phase.name()),
                wb.phase(phase).mean() / 1e3,
            );
        }
    }
}

/// Fig 8: time to compute the candidate set from random suspicion graphs.
#[derive(Debug, Clone)]
pub struct CandidateTimingScenario {
    /// Graph sizes to time.
    pub sizes: Vec<usize>,
    /// Random graphs per size.
    pub graphs_per_size: usize,
    /// Edge probability of the suspicion graphs.
    pub edge_prob: f64,
    /// Bron–Kerbosch expansion budget.
    pub budget: u64,
}

impl CandidateTimingScenario {
    fn run_cell(&self, n: usize, seed: u64) -> CellMetrics {
        let selector = CandidateSelector::new(SelectionStrategy::MaxIndependentSet {
            budget: self.budget as usize,
        });
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, n as u64));
        let mut times_ms = Vec::new();
        for _ in 0..self.graphs_per_size {
            let mut g = SuspicionGraph::new(0..n);
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.gen_bool(self.edge_prob) {
                        g.add_edge(a, b);
                    }
                }
            }
            let start = std::time::Instant::now();
            let sel = selector.select(&g);
            times_ms.push(start.elapsed().as_secs_f64() * 1000.0);
            assert!(!sel.candidates.is_empty());
        }
        let mut m = CellMetrics::new();
        m.set("time_ms", mean(&times_ms))
            .set("time_ci95_ms", ci95(&times_ms))
            .set(
                "time_max_ms",
                times_ms.iter().cloned().fold(0.0f64, f64::max),
            );
        m
    }
}

/// Fig 10: tree latency under the targeted-suspicion attack, per variant.
#[derive(Debug, Clone)]
pub struct SuspicionAttackScenario {
    /// Number of replicas (randomly distributed across the world).
    pub n: usize,
    /// Reconfigurations the attack forces.
    pub steps: usize,
    /// Report the score every this many reconfigurations.
    pub report_every: usize,
}

impl SuspicionAttackScenario {
    fn variants() -> [AttackVariant; 3] {
        [
            AttackVariant::Kauri,
            AttackVariant::KauriSa,
            AttackVariant::OptiTree,
        ]
    }

    fn run_cell(&self, variant_idx: usize, seed: u64) -> CellMetrics {
        let variant = Self::variants()[variant_idx];
        let matrix = crate::topology::Deployment::WorldRandom.rtt_matrix(self.n, seed);
        let outcome = simulate_suspicion_attack(variant, self.n, &matrix, self.steps, seed);
        let mut m = CellMetrics::new();
        for (step, &score) in outcome.scores.iter().enumerate() {
            if step % self.report_every == 0 {
                m.set(format!("score_u{step:03}"), score);
            }
        }
        m.set_series(
            "score_by_reconf",
            outcome
                .scores
                .iter()
                .enumerate()
                .map(|(i, &s)| (i as f64, s))
                .collect(),
        );
        m
    }
}

/// Fig 12: tree latency as a function of the SA search budget.
#[derive(Debug, Clone)]
pub struct TreeSearchScenario {
    /// Configuration sizes.
    pub sizes: Vec<usize>,
    /// Search budgets in (calibrated) seconds.
    pub search_secs: Vec<f64>,
    /// Iterations used to calibrate iterations-per-second.
    pub calibration_iters: usize,
}

impl TreeSearchScenario {
    /// Calibrate once per process *per calibration budget*: wall-clock
    /// iterations/second of the SA search on a small configuration. Shared
    /// by all cells of a sweep so their iteration budgets are identical
    /// regardless of worker count; keyed by `calibration_iters` so two
    /// scenarios with different budgets do not silently share a rate.
    fn iterations_per_second(&self) -> f64 {
        static RATES: OnceLock<Mutex<BTreeMap<usize, f64>>> = OnceLock::new();
        let rates = RATES.get_or_init(|| Mutex::new(BTreeMap::new()));
        let mut rates = rates.lock().expect("calibration cache poisoned");
        *rates.entry(self.calibration_iters).or_insert_with(|| {
            let sp = Self::space(57, 0);
            let start = std::time::Instant::now();
            let _ = search_tree(
                &sp,
                AnnealingParams {
                    iterations: self.calibration_iters,
                    ..Default::default()
                },
                0,
            );
            self.calibration_iters as f64 / start.elapsed().as_secs_f64().max(1e-9)
        })
    }

    fn space(n: usize, seed: u64) -> TreeSearchSpace {
        let system = SystemConfig::new(n);
        TreeSearchSpace {
            n,
            branch: system.tree_branch_factor(),
            matrix_rtt_ms: crate::topology::Deployment::WorldRandom.rtt_matrix(n, seed),
            candidates: (0..n).collect(),
            k: system.quorum(),
        }
    }

    fn run_cell(&self, size_idx: usize, secs_idx: usize, seed: u64) -> CellMetrics {
        let n = self.sizes[size_idx];
        let secs = self.search_secs[secs_idx];
        let params = AnnealingParams::from_search_time(secs, self.iterations_per_second());
        let sp = Self::space(n, seed);
        let (_, score) = search_tree(&sp, params, seed);
        let mut m = CellMetrics::new();
        m.set("score_ms", score)
            .set("iterations", params.iterations as f64);
        m
    }
}

/// Fig 13: proposal size with different OptiLog sensors enabled.
#[derive(Debug, Clone)]
pub struct ProposalSizeScenario {
    /// Configuration sizes.
    pub sizes: Vec<usize>,
    /// Block header + batching metadata bytes without OptiLog.
    pub base_bytes: usize,
}

impl ProposalSizeScenario {
    fn run_cell(&self, n: usize) -> CellMetrics {
        use crypto::{Complaint, Digest, Keyring, MisbehaviorKind, MisbehaviorProof};
        use optilog::measurement::LoggedConfigProposal;
        use optilog::{LatencyVector, Measurement, Suspicion, SuspicionKind};

        let base = self.base_bytes;
        let lv = Measurement::Latency(LatencyVector::new(0, vec![1.0; n])).wire_bytes();
        let suspicion = Measurement::Suspicion(Suspicion {
            kind: SuspicionKind::Slow,
            accuser: 1,
            accused: 2,
            round: 10,
            phase: 2,
            accuser_is_leader: false,
        })
        .wire_bytes();
        let ring = Keyring::new(1, n);
        let d1 = Digest::of(b"proposal-a");
        let d2 = Digest::of(b"proposal-b");
        let proof = MisbehaviorProof {
            accused: 3,
            kind: MisbehaviorKind::Equivocation {
                view: 5,
                first: (d1, ring.key(3).sign(&d1)),
                second: (d2, ring.key(3).sign(&d2)),
            },
        };
        let complaint = Measurement::Complaint(Complaint::new(0, proof, &ring)).wire_bytes();
        let config = Measurement::Config(LoggedConfigProposal {
            proposer: 0,
            epoch: 1,
            score: 100.0,
            payload: vec![0u8; n],
        })
        .wire_bytes();

        let mut m = CellMetrics::new();
        m.set("bytes_base", base as f64)
            .set("bytes_latency_vec", (base + lv) as f64)
            // A handful of suspicions ride on a proposal during instability.
            .set("bytes_suspicions", (base + lv + 4 * suspicion) as f64)
            .set("bytes_misbehavior", (base + lv + complaint + config) as f64);
        m
    }
}

/// Fig 14: cost of over-provisioning the score function for `u` faulty leaves.
#[derive(Debug, Clone)]
pub struct OverprovisionScenario {
    /// Configuration sizes.
    pub sizes: Vec<usize>,
    /// Provisioning percentages (`u = n · pct / 100`).
    pub percents: Vec<usize>,
    /// SA iteration budget per search.
    pub iterations: usize,
}

impl OverprovisionScenario {
    fn run_cell(&self, size_idx: usize, pct_idx: usize, seed: u64) -> CellMetrics {
        let n = self.sizes[size_idx];
        let pct = self.percents[pct_idx];
        let system = SystemConfig::new(n);
        let u = (n * pct) / 100;
        let k = (system.quorum() + u).min(n);
        let matrix = crate::topology::Deployment::WorldRandom.rtt_matrix(n, seed);
        let sp = TreeSearchSpace {
            n,
            branch: system.tree_branch_factor(),
            matrix_rtt_ms: matrix.clone(),
            candidates: (0..n).collect(),
            k,
        };
        let (tree, _) = search_tree(
            &sp,
            AnnealingParams {
                iterations: self.iterations,
                ..Default::default()
            },
            seed,
        );
        let mut m = CellMetrics::new();
        m.set("score_ms", tree_score(&tree, &matrix, n, k))
            .set("u", u as f64);
        m
    }
}

/// What a scenario measures.
#[derive(Debug, Clone)]
pub enum ScenarioKind {
    /// Simulation runs over substrates × topologies × adversaries.
    Protocol(ProtocolScenario),
    /// Fig 8: candidate-set computation time.
    CandidateTiming(CandidateTimingScenario),
    /// Fig 10: the targeted-suspicion attack.
    SuspicionAttack(SuspicionAttackScenario),
    /// Fig 12: SA search budget vs tree latency.
    TreeSearch(TreeSearchScenario),
    /// Fig 13: proposal wire sizes.
    ProposalSize(ProposalSizeScenario),
    /// Fig 14: over-provisioned score targets.
    Overprovision(OverprovisionScenario),
}

/// One point of a scenario grid.
#[derive(Debug, Clone)]
pub struct Point {
    /// Display label (also the JSON point label).
    pub label: String,
    /// Axis values, for the JSON `params` object.
    pub params: BTreeMap<String, String>,
    /// Per-axis indices into the owning scenario's lists.
    pub(crate) idx: Vec<usize>,
}

/// A named, seeded scenario: the unit the sweep runner executes.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name; the JSON file is `BENCH_<name>.json`.
    pub name: String,
    /// Seeds swept for every point.
    pub seeds: Vec<u64>,
    /// What to measure.
    pub kind: ScenarioKind,
}

impl ScenarioSpec {
    /// Create a spec.
    pub fn new(name: impl Into<String>, seeds: Vec<u64>, kind: ScenarioKind) -> Self {
        let name = name.into();
        assert!(!seeds.is_empty(), "scenario needs at least one seed");
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
            "scenario name must be filesystem-safe: {name:?}"
        );
        ScenarioSpec { name, seeds, kind }
    }

    /// Expand the parameter grid.
    pub fn points(&self) -> Vec<Point> {
        fn simple<T>(items: &[T], name: &str, label: impl Fn(&T) -> String) -> Vec<Point> {
            items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let l = label(item);
                    Point {
                        label: l.clone(),
                        params: BTreeMap::from([(name.to_string(), l)]),
                        idx: vec![i],
                    }
                })
                .collect()
        }
        fn grid<A, B>(
            a: &[A],
            b: &[B],
            names: (&str, &str),
            la: impl Fn(&A) -> String,
            lb: impl Fn(&B) -> String,
        ) -> Vec<Point> {
            let mut out = Vec::new();
            for (i, x) in a.iter().enumerate() {
                for (j, y) in b.iter().enumerate() {
                    out.push(Point {
                        label: format!("{} | {}", la(x), lb(y)),
                        params: BTreeMap::from([
                            (names.0.to_string(), la(x)),
                            (names.1.to_string(), lb(y)),
                        ]),
                        idx: vec![i, j],
                    });
                }
            }
            out
        }
        match &self.kind {
            ScenarioKind::Protocol(p) => p.points(),
            ScenarioKind::CandidateTiming(c) => simple(&c.sizes, "n", |n| format!("n={n}")),
            ScenarioKind::SuspicionAttack(_) => {
                simple(&SuspicionAttackScenario::variants(), "variant", |v| {
                    format!("{v:?}")
                })
            }
            ScenarioKind::TreeSearch(t) => grid(
                &t.sizes,
                &t.search_secs,
                ("n", "search_s"),
                |n| format!("n={n}"),
                |s| format!("search={s:.2}s"),
            ),
            ScenarioKind::ProposalSize(p) => simple(&p.sizes, "n", |n| format!("n={n}")),
            ScenarioKind::Overprovision(o) => grid(
                &o.sizes,
                &o.percents,
                ("n", "u_pct"),
                |n| format!("n={n}"),
                |p| format!("u={p}%"),
            ),
        }
    }

    /// True if cells measure *wall-clock* time (Fig 8's candidate timing,
    /// Fig 12's calibrated search budgets). The sweep runner executes these
    /// on a single worker regardless of `--threads`: concurrent sibling
    /// cells would contend for cores and inflate the very quantity being
    /// measured. Their JSON is reproducible across thread counts (always
    /// serial) but not across processes — wall time is wall time.
    pub fn wall_clock_timed(&self) -> bool {
        matches!(
            self.kind,
            ScenarioKind::CandidateTiming(_) | ScenarioKind::TreeSearch(_)
        )
    }

    /// Run one cell: pure in (spec, point, seed).
    pub fn run_cell(&self, point: &Point, seed: u64) -> CellMetrics {
        self.run_cell_with(point, seed, &Telemetry::recording())
    }

    /// Run one cell against an explicit telemetry handle. The sweep runner
    /// owns the handle so a panicking cell can still be flight-dumped with
    /// everything it recorded. Analytic kinds carry no instrumentation and
    /// ignore the handle.
    pub fn run_cell_with(&self, point: &Point, seed: u64, telemetry: &Telemetry) -> CellMetrics {
        match &self.kind {
            ScenarioKind::Protocol(p) => p.run_cell_with(point, seed, telemetry),
            ScenarioKind::CandidateTiming(c) => c.run_cell(c.sizes[point.idx[0]], seed),
            ScenarioKind::SuspicionAttack(a) => a.run_cell(point.idx[0], seed),
            ScenarioKind::TreeSearch(t) => t.run_cell(point.idx[0], point.idx[1], seed),
            ScenarioKind::ProposalSize(p) => p.run_cell(p.sizes[point.idx[0]]),
            ScenarioKind::Overprovision(o) => o.run_cell(point.idx[0], point.idx[1], seed),
        }
    }

    /// Run one cell in breakdown mode: a trace sink is installed, the
    /// committed commands' latency anatomy is attributed from the spans,
    /// and `breakdown.*` metrics land in the cell next to everything
    /// [`ScenarioSpec::run_cell`] produces. Analytic kinds (no commit path
    /// to attribute) fall back to the plain cell.
    pub fn run_cell_breakdown(&self, point: &Point, seed: u64) -> CellMetrics {
        match &self.kind {
            ScenarioKind::Protocol(p) => p.run_cell_breakdown(point, seed),
            _ => self.run_cell(point, seed),
        }
    }

    /// Run one extra cell with a trace sink installed and return the causal
    /// trace alongside the metrics. Only protocol scenarios carry
    /// instrumentation points; returns `None` for analytic kinds.
    ///
    /// The traced cell is run *outside* the sweep: a scenario without a
    /// traffic axis gets a default open-loop load injected so the
    /// client-path stages (client emit, admission, ingress forward, reply)
    /// appear in the trace — that substitution is why the traced run's
    /// metrics are exported next to the trace, never into `BENCH_*.json`.
    pub fn run_cell_traced(&self) -> Option<TracedCell> {
        let ScenarioKind::Protocol(proto) = &self.kind else {
            return None;
        };
        let mut traced = proto.clone();
        if traced.traffics.is_empty() {
            traced.traffics = vec![TrafficSpec::poisson(300.0)
                .with_clients(16)
                .with_batching(60, Duration::from_millis(40))];
        }
        let points = traced.points();
        // Prefer an OptiTree cell — the paper's protagonist, and the one
        // whose per-hop forward spans make a Fig 7 attack legible.
        let point = points
            .iter()
            .find(|p| {
                p.params
                    .get("substrate")
                    .is_some_and(|s| s.starts_with("OptiTree"))
            })
            .unwrap_or(&points[0]);
        let seed = self.seeds[0];
        let telemetry = Telemetry::tracing();
        let metrics = traced.run_cell_with(point, seed, &telemetry);
        let n = traced.topologies[point.idx[1]].n;
        let mut process_labels: Vec<(usize, String)> =
            (0..n).map(|i| (i, format!("replica {i}"))).collect();
        process_labels.push((telemetry::CLIENTS_PID, "clients".to_string()));
        let chrome_json = telemetry
            .chrome_trace_json(&process_labels)
            .expect("tracing handle has a sink");
        Some(TracedCell {
            label: point.label.clone(),
            seed,
            metrics,
            stage_counts: telemetry.stage_counts(),
            chrome_json,
            prometheus: telemetry.prometheus_text(),
        })
    }
}

/// The artifacts of one traced cell (see [`ScenarioSpec::run_cell_traced`]).
pub struct TracedCell {
    /// Label of the traced point.
    pub label: String,
    /// Seed of the traced cell.
    pub seed: u64,
    /// The traced cell's metrics (registry included), for display only.
    pub metrics: CellMetrics,
    /// Number of recorded span events per stage name.
    pub stage_counts: BTreeMap<&'static str, u64>,
    /// The Chrome/Perfetto `trace_event` JSON document.
    pub chrome_json: String,
    /// The registry rendered in Prometheus text exposition format.
    pub prometheus: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Deployment;

    #[test]
    fn mix_seed_spreads_and_is_deterministic() {
        assert_eq!(mix_seed(1, 2), mix_seed(1, 2));
        assert_ne!(mix_seed(1, 2), mix_seed(1, 3));
        assert_ne!(mix_seed(1, 2), mix_seed(2, 2));
    }

    #[test]
    fn sample_seeds_distinct_and_deterministic() {
        let s = sample_seeds(1000, 16, 42);
        assert_eq!(s.len(), 16);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
        assert_eq!(s, sample_seeds(1000, 16, 42));
        assert_ne!(s, sample_seeds(1000, 16, 43));
    }

    #[test]
    fn protocol_points_cross_axes() {
        let spec = ScenarioSpec::new(
            "unit",
            vec![0],
            ScenarioKind::Protocol(ProtocolScenario::new(
                vec![Substrate::BftSmart, Substrate::Aware],
                vec![
                    Topology::of(Deployment::Europe21),
                    Topology::of(Deployment::Global73),
                ],
            )),
        );
        let points = spec.points();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].label, "BFT-SMaRt | Europe21");
        assert_eq!(points[3].label, "Aware | Global73");
        assert_eq!(points[1].params["topology"], "Global73");
        assert_eq!(points[1].params["adversary"], "clean");
    }

    #[test]
    fn single_axis_label_is_substrate() {
        let spec = ScenarioSpec::new(
            "unit",
            vec![0],
            ScenarioKind::Protocol(ProtocolScenario::new(
                vec![Substrate::OptiAware],
                vec![Topology::of(Deployment::Europe21)],
            )),
        );
        assert_eq!(spec.points()[0].label, "OptiAware");
    }

    #[test]
    fn proposal_size_cells_scale_with_n() {
        let sc = ProposalSizeScenario {
            sizes: vec![20, 80],
            base_bytes: 256,
        };
        let small = sc.run_cell(20);
        let large = sc.run_cell(80);
        assert!(small.values["bytes_latency_vec"] < large.values["bytes_latency_vec"]);
        assert!(large.values["bytes_misbehavior"] > large.values["bytes_suspicions"]);
    }

    #[test]
    fn traffic_axis_expands_points_and_params() {
        let scenario = ProtocolScenario::new(
            vec![Substrate::BftSmart, Substrate::Kauri],
            vec![Topology::with_n(Deployment::Europe21, 7)],
        )
        .with_traffic_axis(vec![
            rsm::TrafficSpec::poisson(500.0),
            rsm::TrafficSpec::poisson(2000.0),
        ]);
        let spec = ScenarioSpec::new("unit", vec![0], ScenarioKind::Protocol(scenario));
        let points = spec.points();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].label, "BFT-SMaRt | poisson@500");
        assert_eq!(points[3].label, "Kauri | poisson@2000");
        assert_eq!(points[1].params["traffic"], "poisson@2000");
        assert_eq!(points[1].idx, vec![0, 0, 0, 1]);
    }

    /// Every substrate family must consume the traffic queue when the axis
    /// is present: the cell reports offered/committed/goodput metrics, and a
    /// sub-saturation load commits nearly everything on all of them.
    #[test]
    fn traffic_cells_commit_offered_load_on_every_substrate_family() {
        let scenario = ProtocolScenario::new(
            vec![
                Substrate::BftSmart,
                Substrate::HotStuffFixed,
                Substrate::Kauri,
            ],
            vec![Topology::with_n(Deployment::Europe21, 7)],
        )
        .with_traffic_axis(vec![rsm::TrafficSpec::poisson(300.0)
            .with_clients(16)
            .with_batching(60, Duration::from_millis(40))])
        .run_for(Duration::from_secs(15));
        let spec = ScenarioSpec::new("unit", vec![0], ScenarioKind::Protocol(scenario));
        for point in &spec.points() {
            let m = spec.run_cell(point, 0);
            let (offered, committed) = (m.values["offered_ops"], m.values["committed_ops"]);
            assert!(offered > 200.0, "{}: offered {offered}", point.label);
            assert!(
                committed > offered * 0.85,
                "{}: committed {committed} of offered {offered}",
                point.label
            );
            assert_eq!(m.values["rejected"], 0.0, "{}", point.label);
            assert!(m.values["e2e_p99_ms"] > 0.0);
            assert!(!m.series["e2e_timeline"].is_empty());
            assert!(!m.series["goodput_timeline"].is_empty());
        }
    }

    /// Tree cells report the configuration-log role bookkeeping: adopted
    /// epochs, committed pairs, exclusions, and — when a delay attack is
    /// scripted — whether the attacker kept an internal position.
    #[test]
    fn tree_cells_report_role_config_metrics() {
        let scenario = ProtocolScenario::new(
            vec![Substrate::Kauri],
            vec![Topology::with_n(Deployment::Europe21, 13)],
        )
        .with_adversaries(vec![AdversaryScript::named("mid-delay").during(
            SimTime::from_secs(10),
            SimTime::from_secs(25),
            crate::Attack::DelayProposals {
                target: crate::Target::TreeIntermediates { count: 1 },
                delay: Duration::from_millis(2_500),
            },
        )])
        .run_for(Duration::from_secs(30));
        let spec = ScenarioSpec::new("unit", vec![1], ScenarioKind::Protocol(scenario));
        let m = spec.run_cell(&spec.points()[0], 1);
        for key in [
            "committed_pairs",
            "adopted_epochs",
            "excluded_count",
            "root_retained",
            "initial_root_excluded",
            "attacker_excluded",
            "attacker_internal_final",
            "pairs_accuse_attacker",
        ] {
            assert!(m.values.contains_key(key), "missing metric {key}");
        }
        assert!(m.values["committed_pairs"] >= 1.0);
        assert_eq!(m.values["pairs_accuse_attacker"], 1.0);
        assert_eq!(m.values["attacker_internal_final"], 0.0);
    }

    #[test]
    fn small_protocol_cell_commits() {
        let scenario = ProtocolScenario::new(
            vec![Substrate::BftSmart],
            vec![Topology::with_n(Deployment::Europe21, 4)],
        )
        .run_for(Duration::from_secs(10));
        let spec = ScenarioSpec::new("unit", vec![0], ScenarioKind::Protocol(scenario));
        let points = spec.points();
        let m = spec.run_cell(&points[0], 0);
        assert!(m.values["blocks"] > 0.0);
        assert!(m.values["latency_ms"] > 0.0);
    }

    /// The satellite guarantee: installing a trace sink must not perturb a
    /// single byte of the BENCH json. Both runs record into a registry (the
    /// recording tier is always on); the sink only additionally captures
    /// span events, and nothing reads them back into the metrics.
    #[test]
    fn traced_run_bench_json_is_byte_identical_to_untraced() {
        use crate::results::{CellReport, PointReport, ScenarioReport};

        let scenario = ProtocolScenario::new(
            vec![Substrate::Kauri],
            vec![Topology::with_n(Deployment::Europe21, 7)],
        )
        .with_traffic_axis(vec![rsm::TrafficSpec::poisson(300.0)
            .with_clients(8)
            .with_batching(60, Duration::from_millis(40))])
        .with_adversaries(vec![AdversaryScript::named("mid-delay").during(
            SimTime::from_secs(5),
            SimTime::from_secs(10),
            crate::Attack::DelayProposals {
                target: crate::Target::TreeIntermediates { count: 1 },
                delay: Duration::from_millis(1_500),
            },
        )])
        .run_for(Duration::from_secs(15));
        let spec = ScenarioSpec::new("unit_trace_id", vec![0], ScenarioKind::Protocol(scenario));
        let point = &spec.points()[0];
        let ScenarioKind::Protocol(proto) = &spec.kind else {
            unreachable!()
        };

        let report_of = |metrics: CellMetrics| ScenarioReport {
            scenario: spec.name.clone(),
            seeds: spec.seeds.clone(),
            points: vec![PointReport::aggregate(
                point.label.clone(),
                point.params.clone(),
                vec![CellReport { seed: 0, metrics }],
            )],
        };
        let untraced = report_of(spec.run_cell(point, 0));
        let tracing = Telemetry::tracing();
        let traced = report_of(proto.run_cell_with(point, 0, &tracing));
        assert_eq!(untraced.to_json(), traced.to_json());
        // The traced run did actually trace.
        let counts = tracing.stage_counts();
        assert!(counts.get("commit").copied().unwrap_or(0) > 0, "{counts:?}");
    }

    /// A traced cell of an attacked tree scenario covers every
    /// instrumentation point on the request path — including the injected
    /// default traffic load when the sweep itself is saturated.
    #[test]
    fn traced_cell_covers_every_instrumentation_point() {
        let scenario = ProtocolScenario::new(
            vec![Substrate::Kauri],
            vec![Topology::with_n(Deployment::Europe21, 7)],
        )
        .with_adversaries(vec![AdversaryScript::named("mid-delay").during(
            SimTime::from_secs(5),
            SimTime::from_secs(10),
            crate::Attack::DelayProposals {
                target: crate::Target::TreeIntermediates { count: 1 },
                delay: Duration::from_millis(1_500),
            },
        )])
        .run_for(Duration::from_secs(15));
        let spec = ScenarioSpec::new(
            "unit_trace_cover",
            vec![0],
            ScenarioKind::Protocol(scenario),
        );
        let traced = spec.run_cell_traced().expect("protocol scenario traces");
        for stage in [
            "client_emit",
            "admission",
            "ingress_forward",
            "propose",
            "forward",
            "hold",
            "vote",
            "aggregate",
            "commit",
            "reply",
        ] {
            assert!(
                traced.stage_counts.get(stage).copied().unwrap_or(0) > 0,
                "stage {stage} missing from trace: {:?}",
                traced.stage_counts
            );
        }
        assert!(traced.chrome_json.contains("\"traceEvents\""));
        assert!(traced.prometheus.contains("netsim_engine_scheduled"));
        assert!(traced
            .metrics
            .values
            .contains_key("netsim.engine.scheduled"));
    }

    #[test]
    #[should_panic(expected = "filesystem-safe")]
    fn spec_rejects_unsafe_names() {
        ScenarioSpec::new(
            "../evil",
            vec![0],
            ScenarioKind::ProposalSize(ProposalSizeScenario {
                sizes: vec![4],
                base_bytes: 1,
            }),
        );
    }
}
