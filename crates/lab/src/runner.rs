//! The multi-threaded sweep runner and the shared experiment CLI.
//!
//! A sweep is the full cell grid (points × seeds) of one [`ScenarioSpec`].
//! Cells are independent pure functions, so the runner fans them across
//! `std::thread` workers pulling from a shared queue. Results are written
//! into per-cell slots keyed by grid index and aggregated in grid order, so
//! the report — and its JSON — is byte-identical for any worker count. The
//! execution *order* is deterministically shuffled for load balance (long
//! and short points interleave) without affecting the output.

use crate::results::{CellReport, PointReport, ScenarioReport};
use crate::scenario::ScenarioSpec;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a sweep is executed and where results go.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads (capped at the number of cells).
    pub threads: usize,
    /// Directory for `BENCH_<scenario>.json`; `None` skips the file.
    pub out_dir: Option<PathBuf>,
    /// Run one extra traced cell after the sweep and write its Chrome
    /// `trace_event` JSON here (plus a `.prom` metrics dump alongside).
    pub trace: Option<PathBuf>,
    /// Run every cell with a trace sink and attribute each committed
    /// command's e2e latency into phases: `breakdown.*` metrics join the
    /// cells (and the BENCH json), and the report prints a per-point phase
    /// table. Per-cell sinks are thread-independent, so the json stays
    /// byte-identical across `--threads`.
    pub breakdown: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            out_dir: Some(PathBuf::from(".")),
            trace: None,
            breakdown: false,
        }
    }
}

impl SweepOptions {
    /// Single-threaded, no JSON output (unit-test friendly).
    pub fn serial() -> Self {
        SweepOptions {
            threads: 1,
            out_dir: None,
            trace: None,
            breakdown: false,
        }
    }

    /// Override the worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enable per-cell critical-path breakdown attribution.
    pub fn with_breakdown(mut self) -> Self {
        self.breakdown = true;
        self
    }
}

/// Run the full sweep and aggregate per-point reports.
pub fn run_sweep(spec: &ScenarioSpec, opts: &SweepOptions) -> ScenarioReport {
    let points = spec.points();
    let cells: Vec<(usize, u64)> = points
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| spec.seeds.iter().map(move |&s| (pi, s)))
        .collect();

    // Deterministic execution order, shuffled for load balance: expensive
    // points (large n, long runs) spread across workers instead of clumping
    // at one end of the queue. Results are keyed by cell index, so this
    // cannot affect the report.
    let mut order: Vec<usize> = (0..cells.len()).collect();
    order.shuffle(&mut StdRng::seed_from_u64(0x05ee_d1ab));

    let slots: Vec<Mutex<Option<CellReport>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // Wall-clock-timed scenarios must not share cores between cells: the
    // contention would inflate the measured times themselves.
    let cap = if spec.wall_clock_timed() {
        1
    } else {
        cells.len().max(1)
    };
    let workers = opts.threads.clamp(1, cap);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                let Some(&cell_idx) = order.get(k) else { break };
                let (pi, seed) = cells[cell_idx];
                // The cell's telemetry handle lives out here so a panicking
                // cell can still be flight-dumped: whatever the cell recorded
                // up to the failure goes to disk before the panic resumes.
                let telemetry = telemetry::Telemetry::recording();
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if opts.breakdown {
                        spec.run_cell_breakdown(&points[pi], seed)
                    } else {
                        spec.run_cell_with(&points[pi], seed, &telemetry)
                    }
                }));
                let metrics = match run {
                    Ok(metrics) => metrics,
                    Err(payload) => {
                        dump_failed_cell(&telemetry, opts, &points[pi].label, seed);
                        std::panic::resume_unwind(payload);
                    }
                };
                *slots[cell_idx].lock().expect("result slot poisoned") =
                    Some(CellReport { seed, metrics });
            });
        }
    });

    let mut collected: Vec<Option<CellReport>> = slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned"))
        .collect();
    let mut report_points = Vec::with_capacity(points.len());
    let mut it = collected.drain(..);
    for point in &points {
        let cells: Vec<CellReport> = spec
            .seeds
            .iter()
            .map(|_| it.next().flatten().expect("every cell ran"))
            .collect();
        report_points.push(PointReport::aggregate(
            point.label.clone(),
            point.params.clone(),
            cells,
        ));
    }
    ScenarioReport {
        scenario: spec.name.clone(),
        seeds: spec.seeds.clone(),
        points: report_points,
    }
}

/// Flight-dump the telemetry of a failed (panicked) sweep cell into
/// `<out_dir>/flight/` (falling back to the system temp dir when the sweep
/// writes no JSON), so the postmortem evidence survives the aborting run.
// Sanctioned CLI output: the dump notice must reach the terminal even as the
// sweep aborts.
#[allow(clippy::print_stderr)]
fn dump_failed_cell(telemetry: &telemetry::Telemetry, opts: &SweepOptions, label: &str, seed: u64) {
    let report = audit::Auditor::new().finish(&telemetry.registry_snapshot());
    let dir = opts
        .out_dir
        .clone()
        .unwrap_or_else(std::env::temp_dir)
        .join("flight");
    let recorder = audit::FlightRecorder::new(telemetry.clone(), &dir);
    match recorder.dump(&format!("cell-{label}-seed-{seed}"), &report) {
        Ok(path) => eprintln!(
            "# cell [{label} seed {seed}] failed; flight dump at {}",
            path.display()
        ),
        Err(e) => eprintln!("# cell [{label} seed {seed}] failed; flight dump also failed: {e}"),
    }
}

/// Run the sweep, print a metric table, and write `BENCH_<scenario>.json`.
/// This is the whole body of a figure binary.
// Sanctioned CLI output: this function *is* the figure binary's stdout.
#[allow(clippy::print_stdout, clippy::print_stderr)]
pub fn run_and_report(
    spec: &ScenarioSpec,
    opts: &SweepOptions,
    table_metrics: &[&str],
) -> ScenarioReport {
    let report = run_sweep(spec, opts);
    print!("{}", report.render_table(table_metrics));
    if opts.breakdown {
        print!("{}", report.render_breakdown_tables());
    }
    if let Some(dir) = &opts.out_dir {
        match report.write_bench_json(dir) {
            Ok(path) => println!("# wrote {}", path.display()),
            Err(e) => eprintln!("# could not write BENCH json: {e}"),
        }
    }
    if let Some(path) = &opts.trace {
        match export_trace(spec, path) {
            Ok(()) => {}
            Err(e) => eprintln!("# could not write trace: {e}"),
        }
    }
    report
}

/// Run one extra traced cell (outside the sweep — `BENCH_*.json` is already
/// written and untouched) and write its Chrome `trace_event` JSON to `path`,
/// plus the metrics registry in Prometheus text format to `path.prom`.
// Sanctioned CLI output: invoked only from `--trace` on figure binaries.
#[allow(clippy::print_stdout, clippy::print_stderr)]
pub fn export_trace(spec: &ScenarioSpec, path: &std::path::Path) -> std::io::Result<()> {
    let Some(traced) = spec.run_cell_traced() else {
        println!("# --trace: scenario kind has no causal instrumentation; skipped");
        return Ok(());
    };
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, &traced.chrome_json)?;
    let prom_path = path.with_extension("prom");
    std::fs::write(&prom_path, &traced.prometheus)?;
    let spans: u64 = traced.stage_counts.values().sum();
    println!(
        "# traced cell [{} seed {}]: {} spans across {} stages -> {} (+ {})",
        traced.label,
        traced.seed,
        spans,
        traced.stage_counts.len(),
        path.display(),
        prom_path.display(),
    );
    Ok(())
}

/// Command-line arguments shared by every experiment binary: positional
/// numeric overrides (as before) plus `--threads N`, `--seeds N`, `--out DIR`
/// and `--no-json`.
#[derive(Debug, Clone)]
pub struct LabArgs {
    positionals: Vec<u64>,
    /// Worker threads for the sweep.
    pub threads: usize,
    /// Seed-count override (`--seeds N` sweeps seeds `0..N`).
    pub seeds: Option<usize>,
    /// Output directory for `BENCH_*.json` (`--no-json` disables).
    pub out_dir: Option<PathBuf>,
    /// `--trace out.json`: export one traced cell after the sweep.
    pub trace: Option<PathBuf>,
    /// `--breakdown`: attribute per-phase latency in every cell and print
    /// the per-point anatomy tables.
    pub breakdown: bool,
}

impl LabArgs {
    /// Parse `std::env::args()`.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parse from an explicit argument list (testable).
    #[allow(clippy::should_implement_trait)] // parses CLI words, not a collection
    pub fn from_iter(args: impl IntoIterator<Item = String>) -> Self {
        let defaults = SweepOptions::default();
        let mut out = LabArgs {
            positionals: Vec::new(),
            threads: defaults.threads,
            seeds: None,
            out_dir: Some(PathBuf::from(".")),
            trace: None,
            breakdown: false,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--threads" | "-j" => {
                    out.threads = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--threads needs a number")
                }
                "--seeds" => {
                    out.seeds = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--seeds needs a number"),
                    )
                }
                "--out" => {
                    out.out_dir = Some(PathBuf::from(it.next().expect("--out needs a directory")))
                }
                "--no-json" => out.out_dir = None,
                "--trace" => {
                    out.trace = Some(PathBuf::from(it.next().expect("--trace needs a file path")))
                }
                "--breakdown" => out.breakdown = true,
                other => {
                    if let Ok(v) = other.parse() {
                        out.positionals.push(v);
                    } else {
                        panic!("unrecognised argument: {other}");
                    }
                }
            }
        }
        out
    }

    /// The `idx`-th positional argument (1-based, like the old `arg_or`).
    pub fn pos_or(&self, idx: usize, default: u64) -> u64 {
        self.positionals.get(idx - 1).copied().unwrap_or(default)
    }

    /// The seed list: `--seeds N` sweeps `0..N`, otherwise `default`.
    pub fn seeds_or(&self, default: &[u64]) -> Vec<u64> {
        match self.seeds {
            Some(k) => (0..k as u64).collect(),
            None => default.to_vec(),
        }
    }

    /// The sweep options these arguments describe.
    pub fn sweep_options(&self) -> SweepOptions {
        SweepOptions {
            threads: self.threads,
            out_dir: self.out_dir.clone(),
            trace: self.trace.clone(),
            breakdown: self.breakdown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ProposalSizeScenario, ScenarioKind};

    fn tiny_spec(seeds: Vec<u64>) -> ScenarioSpec {
        ScenarioSpec::new(
            "unit_runner",
            seeds,
            ScenarioKind::ProposalSize(ProposalSizeScenario {
                sizes: vec![10, 20, 30],
                base_bytes: 256,
            }),
        )
    }

    #[test]
    fn sweep_covers_every_point_and_seed() {
        let spec = tiny_spec(vec![0, 1]);
        let report = run_sweep(&spec, &SweepOptions::serial());
        assert_eq!(report.points.len(), 3);
        for p in &report.points {
            assert_eq!(p.cells.len(), 2);
            assert_eq!(p.cells[0].seed, 0);
            assert_eq!(p.cells[1].seed, 1);
        }
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let spec = tiny_spec(vec![0, 1, 2]);
        let serial = run_sweep(&spec, &SweepOptions::serial());
        let parallel = run_sweep(&spec, &SweepOptions::serial().with_threads(4));
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn args_parse_flags_and_positionals() {
        let args = LabArgs::from_iter(
            [
                "30",
                "--threads",
                "4",
                "21",
                "--seeds",
                "8",
                "--out",
                "/tmp/x",
            ]
            .into_iter()
            .map(String::from),
        );
        assert_eq!(args.pos_or(1, 0), 30);
        assert_eq!(args.pos_or(2, 0), 21);
        assert_eq!(args.pos_or(3, 99), 99);
        assert_eq!(args.threads, 4);
        assert_eq!(args.seeds_or(&[7]), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(
            args.out_dir.as_deref(),
            Some(std::path::Path::new("/tmp/x"))
        );
        let none = LabArgs::from_iter(["--no-json".to_string()]);
        assert!(none.out_dir.is_none());
        assert_eq!(none.seeds_or(&[7]), vec![7]);
    }
}
