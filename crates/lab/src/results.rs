//! Structured experiment results: per-cell metrics, per-point percentile
//! aggregates, and the `BENCH_<scenario>.json` writer that starts the repo's
//! performance trajectory.
//!
//! All containers are ordered (`BTreeMap` / insertion-ordered vectors) and
//! all aggregation is a pure function of the cell results, so a report — and
//! its JSON rendering — is byte-identical for the same `ScenarioSpec` and
//! seeds regardless of how many worker threads produced the cells.

use serde::{Number, Value};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Mean of a slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

pub use rsm::timeline_mean;

/// Half-width of the 95% confidence interval of the mean.
pub fn ci95(values: &[f64]) -> f64 {
    let n = values.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n as f64 - 1.0);
    1.96 * (var / n as f64).sqrt()
}

/// The metrics one cell (one point × one seed) produced: named scalar values
/// plus optional named time series.
#[derive(Debug, Clone, Default)]
pub struct CellMetrics {
    /// Named scalar metrics (ms, op/s, counts, bytes …).
    pub values: BTreeMap<String, f64>,
    /// Named time series, e.g. a per-second throughput timeline.
    pub series: BTreeMap<String, Vec<(f64, f64)>>,
}

impl CellMetrics {
    /// An empty cell result.
    pub fn new() -> Self {
        CellMetrics::default()
    }

    /// Record a scalar metric.
    pub fn set(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.values.insert(name.into(), value);
        self
    }

    /// Record a time series.
    pub fn set_series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.insert(name.into(), points);
        self
    }
}

/// Percentile summary of one metric across the seeds of a point.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    /// Mean across seeds.
    pub mean: f64,
    /// Half-width of the 95% confidence interval of the mean.
    pub ci95: f64,
    /// Minimum across seeds.
    pub min: f64,
    /// Median across seeds.
    pub p50: f64,
    /// Maximum across seeds.
    pub max: f64,
}

impl MetricSummary {
    /// Summarise a set of per-seed values.
    pub fn of(values: &[f64]) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("metric values are not NaN"));
        let pick = |p: f64| {
            if sorted.is_empty() {
                0.0
            } else {
                sorted[((sorted.len() as f64 - 1.0) * p).round() as usize]
            }
        };
        MetricSummary {
            mean: mean(values),
            ci95: ci95(values),
            min: pick(0.0),
            p50: pick(0.5),
            max: pick(1.0),
        }
    }
}

/// One cell's contribution to a point report.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The seed that produced the cell.
    pub seed: u64,
    /// The cell's metrics.
    pub metrics: CellMetrics,
}

/// Aggregated results for one parameter point of the scenario grid.
#[derive(Debug, Clone)]
pub struct PointReport {
    /// Human-readable label, e.g. `OptiAware | Europe21`.
    pub label: String,
    /// The axis values that define the point (substrate, topology, …).
    pub params: BTreeMap<String, String>,
    /// Per-metric summaries across seeds.
    pub metrics: BTreeMap<String, MetricSummary>,
    /// The raw per-seed cells, in seed order.
    pub cells: Vec<CellReport>,
}

impl PointReport {
    /// Aggregate a point from its per-seed cells.
    pub fn aggregate(
        label: String,
        params: BTreeMap<String, String>,
        cells: Vec<CellReport>,
    ) -> Self {
        let mut by_metric: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for cell in &cells {
            for (name, &v) in &cell.metrics.values {
                by_metric.entry(name.clone()).or_default().push(v);
            }
        }
        let metrics = by_metric
            .into_iter()
            .map(|(name, vals)| (name, MetricSummary::of(&vals)))
            .collect();
        PointReport {
            label,
            params,
            metrics,
            cells,
        }
    }

    /// Mean of a metric across seeds (0.0 if absent).
    pub fn metric(&self, name: &str) -> f64 {
        self.metrics.get(name).map(|s| s.mean).unwrap_or(0.0)
    }
}

/// The full result of sweeping one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (`BENCH_<name>.json`).
    pub scenario: String,
    /// Seeds swept per point.
    pub seeds: Vec<u64>,
    /// One report per grid point, in grid order.
    pub points: Vec<PointReport>,
}

impl ScenarioReport {
    /// Look up a point by label.
    pub fn point(&self, label: &str) -> Option<&PointReport> {
        self.points.iter().find(|p| p.label == label)
    }

    /// Mean of `metric` at the point labelled `label` (0.0 if absent).
    pub fn metric(&self, label: &str, metric: &str) -> f64 {
        self.point(label).map(|p| p.metric(metric)).unwrap_or(0.0)
    }

    fn to_value(&self) -> Value {
        let num = |v: f64| Value::Num(Number::F64(v));
        let summary_value = |s: &MetricSummary| {
            Value::Map(vec![
                ("mean".into(), num(s.mean)),
                ("ci95".into(), num(s.ci95)),
                ("min".into(), num(s.min)),
                ("p50".into(), num(s.p50)),
                ("max".into(), num(s.max)),
            ])
        };
        let cell_value = |c: &CellReport| {
            let mut fields = vec![
                ("seed".into(), Value::Num(Number::U64(c.seed))),
                (
                    "metrics".into(),
                    Value::Map(
                        c.metrics
                            .values
                            .iter()
                            .map(|(k, &v)| (k.clone(), num(v)))
                            .collect(),
                    ),
                ),
            ];
            if !c.metrics.series.is_empty() {
                fields.push((
                    "series".into(),
                    Value::Map(
                        c.metrics
                            .series
                            .iter()
                            .map(|(k, pts)| {
                                (
                                    k.clone(),
                                    Value::Arr(
                                        pts.iter()
                                            .map(|&(t, v)| Value::Arr(vec![num(t), num(v)]))
                                            .collect(),
                                    ),
                                )
                            })
                            .collect(),
                    ),
                ));
            }
            Value::Map(fields)
        };
        let point_value = |p: &PointReport| {
            Value::Map(vec![
                ("label".into(), Value::Str(p.label.clone())),
                (
                    "params".into(),
                    Value::Map(
                        p.params
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                            .collect(),
                    ),
                ),
                (
                    "metrics".into(),
                    Value::Map(
                        p.metrics
                            .iter()
                            .map(|(k, s)| (k.clone(), summary_value(s)))
                            .collect(),
                    ),
                ),
                ("cells".into(), Value::Arr(p.cells.iter().map(cell_value).collect())),
            ])
        };
        Value::Map(vec![
            ("scenario".into(), Value::Str(self.scenario.clone())),
            (
                "seeds".into(),
                Value::Arr(self.seeds.iter().map(|&s| Value::Num(Number::U64(s))).collect()),
            ),
            ("points".into(), Value::Arr(self.points.iter().map(point_value).collect())),
        ])
    }

    /// Deterministic JSON rendering: ordered keys, stable float formatting.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("report serializes")
    }

    /// Write `BENCH_<scenario>.json` into `dir` and return the path.
    pub fn write_bench_json(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.scenario));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        file.write_all(b"\n")?;
        Ok(path)
    }

    /// Render a fixed-width table of the given metrics, one row per point.
    /// Metrics absent at a point render as `-`. When more than one seed was
    /// swept, values carry a `±ci95` suffix.
    pub fn render_table(&self, metrics: &[&str]) -> String {
        let label_w = self
            .points
            .iter()
            .map(|p| p.label.len())
            .max()
            .unwrap_or(8)
            .max(8);
        let mut out = String::new();
        out.push_str(&format!("{:<label_w$}", "point"));
        for m in metrics {
            out.push_str(&format!(" {m:>18}"));
        }
        out.push('\n');
        let many = self.seeds.len() > 1;
        for p in &self.points {
            out.push_str(&format!("{:<label_w$}", p.label));
            for m in metrics {
                match p.metrics.get(*m) {
                    Some(s) if many && s.ci95 > 0.0 => {
                        out.push_str(&format!(" {:>11.1} ±{:<5.1}", s.mean, s.ci95))
                    }
                    Some(s) => out.push_str(&format!(" {:>18.1}", s.mean)),
                    None => out.push_str(&format!(" {:>18}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render the per-point critical-path breakdown tables (one block per
    /// point carrying `breakdown.*` metrics, produced by `--breakdown`
    /// sweeps). Values are means across seeds; `share` is each phase's
    /// fraction of total e2e time.
    pub fn render_breakdown_tables(&self) -> String {
        const PHASES: [&str; 7] = [
            "ingress", "admission", "hold", "dissem", "vote", "reply", "other",
        ];
        let mut out = String::new();
        for p in &self.points {
            if !p.metrics.keys().any(|k| k.starts_with("breakdown.")) {
                continue;
            }
            let commands = p.metrics.get("breakdown.commands").map_or(0.0, |s| s.mean);
            out.push_str(&format!(
                "\n# latency anatomy: {} ({commands:.0} commands)\n",
                p.label
            ));
            out.push_str(&format!(
                "{:<10} {:>10} {:>10} {:>10} {:>7}\n",
                "phase", "mean_ms", "p50_ms", "p99_ms", "share"
            ));
            for phase in PHASES {
                let get = |suffix: &str| {
                    p.metrics
                        .get(&format!("breakdown.{phase}.{suffix}"))
                        .map_or(0.0, |s| s.mean)
                };
                out.push_str(&format!(
                    "{:<10} {:>10.2} {:>10.2} {:>10.2} {:>6.1}%\n",
                    phase,
                    get("mean_ms"),
                    get("p50_ms"),
                    get("p99_ms"),
                    get("share") * 100.0
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(seed: u64, v: f64) -> CellReport {
        let mut m = CellMetrics::new();
        m.set("latency_ms", v);
        CellReport { seed, metrics: m }
    }

    #[test]
    fn summary_percentiles() {
        let s = MetricSummary::of(&[30.0, 10.0, 20.0, 40.0, 50.0]);
        assert_eq!(s.mean, 30.0);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.p50, 30.0);
        assert_eq!(s.max, 50.0);
        assert!(s.ci95 > 0.0);
        let empty = MetricSummary::of(&[]);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.max, 0.0);
    }

    #[test]
    fn aggregate_groups_by_metric() {
        let p = PointReport::aggregate(
            "x".into(),
            BTreeMap::new(),
            vec![cell(0, 10.0), cell(1, 30.0)],
        );
        assert_eq!(p.metric("latency_ms"), 20.0);
        assert_eq!(p.metrics["latency_ms"].min, 10.0);
        assert_eq!(p.metric("missing"), 0.0);
    }

    #[test]
    fn json_is_deterministic_and_parseable() {
        let report = ScenarioReport {
            scenario: "unit".into(),
            seeds: vec![0, 1],
            points: vec![PointReport::aggregate(
                "a".into(),
                BTreeMap::from([("substrate".to_string(), "x".to_string())]),
                vec![cell(0, 1.5), cell(1, 2.5)],
            )],
        };
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"scenario\":\"unit\""));
        // Round-trips through the vendored parser.
        let v: Value = serde_json::from_str(&a).expect("valid JSON");
        assert_eq!(v.kind(), "object");
    }

    #[test]
    fn series_appear_in_cells() {
        let mut m = CellMetrics::new();
        m.set("x", 1.0);
        m.set_series("throughput", vec![(0.0, 10.0), (1.0, 20.0)]);
        let p = PointReport::aggregate(
            "s".into(),
            BTreeMap::new(),
            vec![CellReport { seed: 3, metrics: m }],
        );
        let report = ScenarioReport {
            scenario: "unit".into(),
            seeds: vec![3],
            points: vec![p],
        };
        assert!(report.to_json().contains("\"series\""));
    }

    #[test]
    fn table_renders_all_points() {
        let report = ScenarioReport {
            scenario: "unit".into(),
            seeds: vec![0],
            points: vec![
                PointReport::aggregate("alpha".into(), BTreeMap::new(), vec![cell(0, 1.0)]),
                PointReport::aggregate("beta".into(), BTreeMap::new(), vec![cell(0, 2.0)]),
            ],
        };
        let t = report.render_table(&["latency_ms", "absent"]);
        assert!(t.contains("alpha"));
        assert!(t.contains("beta"));
        assert!(t.contains('-'));
    }
}
