//! Geographic topologies for scenarios: the paper's evaluation deployments
//! plus the replica-count override that turns one into a scenario axis.

use netsim::CityDataset;

/// The geographic deployments used in the evaluation (§7.3, §7.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deployment {
    /// 21 European cities.
    Europe21,
    /// 43 cities across Europe and North America.
    NaEu43,
    /// 56 cities approximating the Stellar validator distribution.
    Stellar56,
    /// 73 cities worldwide.
    Global73,
    /// Replicas drawn at random from all 220 cities (Fig 10, Fig 12, Fig 14).
    WorldRandom,
    /// Replicas drawn at random from all 220 cities, one city per replica.
    WorldDistinct,
}

impl Deployment {
    /// Human-readable label matching the paper's x-axis.
    pub fn label(&self) -> &'static str {
        match self {
            Deployment::Europe21 => "Europe21",
            Deployment::NaEu43 => "NA-EU43",
            Deployment::Stellar56 => "Stellar56",
            Deployment::Global73 => "Global73",
            Deployment::WorldRandom => "World(random)",
            Deployment::WorldDistinct => "World(distinct)",
        }
    }

    /// Default configuration size for the deployment.
    pub fn default_n(&self) -> usize {
        match self {
            Deployment::Europe21 => 21,
            Deployment::NaEu43 => 43,
            Deployment::Stellar56 => 56,
            Deployment::Global73 => 73,
            Deployment::WorldRandom | Deployment::WorldDistinct => 211,
        }
    }

    /// The city subset this deployment draws from.
    pub fn city_subset(&self, ds: &CityDataset) -> Vec<usize> {
        match self {
            Deployment::Europe21 => ds.europe21(),
            Deployment::NaEu43 => ds.na_eu43(),
            Deployment::Stellar56 => ds.stellar56(),
            Deployment::Global73 => ds.global73(),
            Deployment::WorldRandom | Deployment::WorldDistinct => (0..ds.len()).collect(),
        }
    }

    /// The cities `n` replicas of this deployment are placed in (round-robin,
    /// or seeded random draws for the world-wide samples).
    pub fn replica_cities(&self, ds: &CityDataset, n: usize, seed: u64) -> Vec<usize> {
        let subset = self.city_subset(ds);
        match self {
            Deployment::WorldRandom => ds.assign_random(&subset, n, seed),
            Deployment::WorldDistinct => ds.assign_distinct(&subset, n, seed),
            _ => ds.assign_round_robin(&subset, n),
        }
    }

    /// Build the replica-to-replica RTT matrix (ms) for `n` replicas of this
    /// deployment, assigning replicas to cities round-robin (or at random for
    /// the world-wide samples, where `seed` selects the draw).
    pub fn rtt_matrix(&self, n: usize, seed: u64) -> Vec<f64> {
        let ds = CityDataset::worldwide();
        let assignment = self.replica_cities(&ds, n, seed);
        let mut m = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                m[a * n + b] = ds.rtt_ms(assignment[a], assignment[b]);
            }
        }
        m
    }
}

/// One topology axis value of a protocol scenario: a deployment and the
/// number of replicas placed on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// The city sample replicas are assigned to.
    pub deployment: Deployment,
    /// Number of replicas.
    pub n: usize,
}

impl Topology {
    /// A topology of the deployment's default size.
    pub fn of(deployment: Deployment) -> Self {
        Topology {
            deployment,
            n: deployment.default_n(),
        }
    }

    /// Override the replica count.
    pub fn with_n(deployment: Deployment, n: usize) -> Self {
        Topology { deployment, n }
    }

    /// Label, including `n` when it differs from the deployment default.
    pub fn label(&self) -> String {
        if self.n == self.deployment.default_n() {
            self.deployment.label().to_string()
        } else {
            format!("{}/n={}", self.deployment.label(), self.n)
        }
    }

    /// The fault threshold `f = ⌊(n − 1) / 3⌋`.
    pub fn f(&self) -> usize {
        (self.n - 1) / 3
    }

    /// The RTT matrix for this topology (seed matters only for the random
    /// world-wide deployments).
    pub fn rtt_matrix(&self, seed: u64) -> Vec<f64> {
        self.deployment.rtt_matrix(self.n, seed)
    }

    /// Place `clients` open-loop clients on this topology's city subset and
    /// return each client's one-way latency (ms) to its nearest replica —
    /// the ingress leg open-loop requests pay before they can be batched.
    /// `seed` must match the one used for [`Topology::rtt_matrix`] so the
    /// replica placement agrees.
    pub fn client_ingress_ms(&self, clients: usize, seed: u64, placement_seed: u64) -> Vec<f64> {
        self.place_clients(clients, seed, placement_seed)
            .into_iter()
            .map(|p| p.ingress_ms)
            .collect()
    }

    /// Like [`Topology::client_ingress_ms`], but also reports *which*
    /// replica each client enters through — the identity the ingress→leader
    /// forwarding hop is charged against (see [`traffic::ForwardingModel`]).
    pub fn place_clients(
        &self,
        clients: usize,
        seed: u64,
        placement_seed: u64,
    ) -> Vec<traffic::ClientPlacement> {
        let ds = CityDataset::worldwide();
        let subset = self.deployment.city_subset(&ds);
        let replicas = self.deployment.replica_cities(&ds, self.n, seed);
        traffic::place_clients(&ds, &subset, &replicas, clients, placement_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::mean;

    #[test]
    fn deployments_produce_square_matrices() {
        for d in [
            Deployment::Europe21,
            Deployment::NaEu43,
            Deployment::Stellar56,
            Deployment::Global73,
        ] {
            let n = d.default_n();
            let m = d.rtt_matrix(n, 0);
            assert_eq!(m.len(), n * n);
            assert_eq!(m[0], 0.0);
            assert!(m.iter().all(|&x| x.is_finite()));
        }
    }

    #[test]
    fn europe_is_faster_than_global() {
        let e = Deployment::Europe21.rtt_matrix(21, 0);
        let g = Deployment::Global73.rtt_matrix(73, 0);
        assert!(mean(&e) < mean(&g));
    }

    #[test]
    fn world_random_is_seed_dependent() {
        let a = Deployment::WorldRandom.rtt_matrix(50, 1);
        let b = Deployment::WorldRandom.rtt_matrix(50, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn world_distinct_has_no_zero_offdiagonal() {
        let n = 60;
        let m = Deployment::WorldDistinct.rtt_matrix(n, 3);
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    assert!(m[a * n + b] > 0.0, "distinct cities have nonzero RTT");
                }
            }
        }
    }

    #[test]
    fn topology_labels() {
        assert_eq!(Topology::of(Deployment::Europe21).label(), "Europe21");
        assert_eq!(
            Topology::with_n(Deployment::WorldRandom, 57).label(),
            "World(random)/n=57"
        );
        assert_eq!(Topology::of(Deployment::Europe21).f(), 6);
    }
}
