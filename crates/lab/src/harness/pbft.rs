//! A ready-made experiment harness for the PBFT family: builds a simulation
//! of `n` replicas plus co-located clients over a city RTT matrix, runs it
//! for a configured virtual duration, and reports client-observed latency
//! timelines (Fig 7) and replica-side throughput/latency.

use netsim::{
    Duration, FaultPlan, FaultWindow, MatrixLatency, SimTime, Simulation, SimulationConfig,
    TimeSeries,
};
use pbft::policy::ReconfigPolicy;
use pbft::replica::{ClientState, DelayStage, PbftNode, ReplicaBehavior, ReplicaState};
use rsm::RunSummary;

/// Configuration of one PBFT simulation run.
pub struct PbftHarnessConfig {
    /// Number of replicas.
    pub n: usize,
    /// Fault threshold.
    pub f: usize,
    /// Number of clients (client `i` is co-located with replica `i % n`).
    pub clients: usize,
    /// Virtual run duration.
    pub run_for: Duration,
    /// Symmetric replica-to-replica RTT matrix in milliseconds (n × n).
    pub rtt_matrix_ms: Vec<f64>,
    /// Per-replica behavior (length `n`).
    pub behaviors: Vec<ReplicaBehavior>,
    /// Network-level faults (crashes, delay/inflation stages, drops).
    pub faults: FaultPlan,
    /// Open-loop traffic source. When set, `clients` must be 0 (the load is
    /// geo-placed open-loop clients compiled into the queue, not simulated
    /// closed-loop client nodes) and leaders pull batches from the queue.
    pub traffic: Option<traffic::SharedTrafficQueue>,
    /// Telemetry handle installed on every replica (disabled by default).
    pub telemetry: telemetry::Telemetry,
}

impl PbftHarnessConfig {
    /// A correct-replica configuration over the given RTT matrix.
    pub fn new(n: usize, f: usize, clients: usize, rtt_matrix_ms: Vec<f64>) -> Self {
        assert_eq!(rtt_matrix_ms.len(), n * n, "RTT matrix must be n*n");
        PbftHarnessConfig {
            n,
            f,
            clients,
            run_for: Duration::from_secs(180),
            rtt_matrix_ms,
            behaviors: vec![ReplicaBehavior::Correct; n],
            faults: FaultPlan::none(),
            traffic: None,
            telemetry: telemetry::Telemetry::disabled(),
        }
    }

    /// Drive the run from an open-loop traffic queue (replaces the
    /// closed-loop clients).
    pub fn with_traffic(mut self, traffic: traffic::SharedTrafficQueue) -> Self {
        assert_eq!(
            self.clients, 0,
            "open-loop traffic replaces the simulated clients; configure clients = 0"
        );
        self.traffic = Some(traffic);
        self
    }

    /// Make one replica perform the Pre-Prepare delay attack from `after` on.
    pub fn with_delay_attacker(self, replica: usize, delay: Duration, after: SimTime) -> Self {
        self.with_delay_attacker_during(replica, delay, after, SimTime::MAX)
    }

    /// Add a delay-attack stage active in `[after, until)` — the phased
    /// variant used by adversary scripts. Stages on the same replica
    /// accumulate, so a script can attack, go quiet, and attack again.
    pub fn with_delay_attacker_during(
        mut self,
        replica: usize,
        delay: Duration,
        after: SimTime,
        until: SimTime,
    ) -> Self {
        let stage = DelayStage {
            delay,
            window: FaultWindow {
                from: after,
                until: (until != SimTime::MAX).then_some(until),
            },
        };
        match &mut self.behaviors[replica] {
            ReplicaBehavior::DelayPropose { stages } => stages.push(stage),
            b => {
                *b = ReplicaBehavior::DelayPropose {
                    stages: vec![stage],
                }
            }
        }
        self
    }

    /// Install a network-level fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Override the run duration.
    pub fn run_for(mut self, d: Duration) -> Self {
        self.run_for = d;
        self
    }
}

/// Results of one run.
#[derive(Debug)]
pub struct PbftRunReport {
    /// End-to-end latency timeline per client (seconds, ms).
    pub client_latency: Vec<TimeSeries>,
    /// Requests completed per client.
    pub client_completed: Vec<u64>,
    /// Consensus-side summary from the first correct replica.
    pub replica_summary: RunSummary,
    /// Times (in seconds) at which replica 1 reconfigured, with the new leader.
    pub reconfigurations: Vec<(f64, usize)>,
    /// Name of the policy that produced the run.
    pub policy_name: &'static str,
    /// Per-replica `(seq, digest fingerprint)` commit history — the exact
    /// agreement checkpoints the post-run auditor compares across replicas.
    pub commit_checkpoints: Vec<Vec<(u64, u64)>>,
    /// Simulator events processed during the run (engine-throughput metric).
    pub events: u64,
}

impl PbftRunReport {
    /// Mean client latency (ms) over a virtual-time window `[from, to)` seconds.
    pub fn mean_client_latency(&self, from: f64, to: f64) -> f64 {
        let vals: Vec<f64> = self
            .client_latency
            .iter()
            .map(|ts| ts.mean_in_window(from, to))
            .filter(|&v| v > 0.0)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

/// The harness itself.
pub struct PbftHarness;

impl PbftHarness {
    /// Build the (n + clients)-node one-way latency matrix: clients share the
    /// city of the replica they are co-located with.
    fn build_latency(config: &PbftHarnessConfig) -> MatrixLatency {
        let n = config.n;
        let total = n + config.clients;
        let city_of = |node: usize| if node < n { node } else { (node - n) % n };
        let mut rtt = vec![0.0; total * total];
        for a in 0..total {
            for b in 0..total {
                if a == b {
                    continue;
                }
                let (ca, cb) = (city_of(a), city_of(b));
                // Same city: 2 ms local RTT; otherwise city RTT.
                rtt[a * total + b] = if ca == cb {
                    2.0
                } else {
                    config.rtt_matrix_ms[ca * n + cb]
                };
            }
        }
        MatrixLatency::from_rtt_millis(total, &rtt)
    }

    /// Run the protocol with the given per-replica policy factory.
    pub fn run(
        config: &PbftHarnessConfig,
        policy_name: &'static str,
        mut policy_factory: impl FnMut(usize) -> Box<dyn ReconfigPolicy>,
    ) -> PbftRunReport {
        let n = config.n;
        let mut nodes: Vec<PbftNode> = Vec::with_capacity(n + config.clients);
        for id in 0..n {
            nodes.push(PbftNode::Replica(
                ReplicaState::new(
                    id,
                    n,
                    config.f,
                    policy_factory(id),
                    config.behaviors[id].clone(),
                )
                .with_traffic(config.traffic.clone())
                .with_telemetry(config.telemetry.clone()),
            ));
        }
        for c in 0..config.clients {
            nodes.push(PbftNode::Client(ClientState::new(c as u64, n, config.f)));
        }

        let latency = Self::build_latency(config);
        let mut sim = Simulation::new(nodes, Box::new(latency))
            .with_faults(config.faults.clone())
            .with_telemetry(config.telemetry.clone())
            .with_config(SimulationConfig {
                horizon: SimTime::ZERO + config.run_for,
                max_events: 500_000_000,
            });
        sim.run();
        sim.record_engine_metrics(&config.telemetry);

        // Collect results.
        let mut client_latency = Vec::new();
        let mut client_completed = Vec::new();
        let mut replica_summary = None;
        let mut reconfigurations = Vec::new();
        let mut commit_checkpoints = Vec::new();
        for id in 0..sim.len() {
            match sim.node_mut(id) {
                PbftNode::Replica(r) => {
                    commit_checkpoints.push(r.commit_checkpoints().to_vec());
                    if id == 1 {
                        reconfigurations = r
                            .reconfigs
                            .iter()
                            .map(|e| (e.at.as_secs_f64(), e.config.leader))
                            .collect();
                    }
                    if replica_summary.is_none() && config.behaviors[id] == ReplicaBehavior::Correct
                    {
                        replica_summary =
                            Some(r.stats.summary(config.run_for.as_micros() / 1_000_000));
                    }
                }
                PbftNode::Client(c) => {
                    client_latency.push(c.latency.clone());
                    client_completed.push(c.completed);
                }
            }
        }

        PbftRunReport {
            client_latency,
            client_completed,
            replica_summary: replica_summary.expect("at least one correct replica"),
            reconfigurations,
            policy_name,
            commit_checkpoints,
            events: sim.events_processed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbft::policy::{AwarePolicy, StaticPolicy};

    /// A 4-replica matrix with a fast cluster {1,2,3} and a slow replica 0.
    fn skewed_matrix(n: usize) -> Vec<f64> {
        let mut m = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let slow = a == 0 || b == 0;
                m[a * n + b] = if slow { 120.0 } else { 20.0 };
            }
        }
        m
    }

    #[test]
    fn static_run_commits_requests() {
        let config =
            PbftHarnessConfig::new(4, 1, 2, skewed_matrix(4)).run_for(Duration::from_secs(20));
        let report = PbftHarness::run(&config, "bft-smart", |_| Box::new(StaticPolicy));
        assert!(report.replica_summary.committed_blocks > 10);
        assert!(report.client_completed.iter().all(|&c| c > 5));
        assert!(report.reconfigurations.is_empty());
        assert!(report.mean_client_latency(1.0, 20.0) > 0.0);
    }

    #[test]
    fn aware_reconfigures_away_from_slow_leader() {
        let config =
            PbftHarnessConfig::new(4, 1, 2, skewed_matrix(4)).run_for(Duration::from_secs(60));
        let report = PbftHarness::run(&config, "aware", |_| {
            Box::new(AwarePolicy::new(4, 1, SimTime::from_secs(15)))
        });
        assert!(
            !report.reconfigurations.is_empty(),
            "Aware should optimise once the matrix is complete"
        );
        let (_, new_leader) = report.reconfigurations[0];
        assert_ne!(new_leader, 0, "slow replica should lose the leader role");
        // Latency after optimisation should beat latency before it.
        let before = report.mean_client_latency(2.0, 14.0);
        let after = report.mean_client_latency(30.0, 60.0);
        assert!(
            after < before,
            "expected improvement, before={before:.1}ms after={after:.1}ms"
        );
    }

    /// Two delay stages on the same replica accumulate (attack → quiet →
    /// attack): the quiet gap between them must return to clean latency.
    #[test]
    fn phased_delay_attacker_goes_quiet_between_stages() {
        let cfg = PbftHarnessConfig::new(4, 1, 2, skewed_matrix(4))
            .run_for(Duration::from_secs(40))
            .with_delay_attacker_during(
                0,
                Duration::from_millis(500),
                SimTime::from_secs(5),
                SimTime::from_secs(12),
            )
            .with_delay_attacker_during(
                0,
                Duration::from_millis(500),
                SimTime::from_secs(25),
                SimTime::from_secs(33),
            );
        let report = PbftHarness::run(&cfg, "bft-smart", |_| Box::new(StaticPolicy));
        let first = report.mean_client_latency(6.0, 12.0);
        let quiet = report.mean_client_latency(14.0, 24.0);
        let second = report.mean_client_latency(26.0, 33.0);
        assert!(
            first > quiet * 2.0,
            "first stage should inflate: first={first:.1}ms quiet={quiet:.1}ms"
        );
        assert!(
            second > quiet * 2.0,
            "second stage should inflate again: second={second:.1}ms quiet={quiet:.1}ms"
        );
    }

    #[test]
    fn open_loop_traffic_commits_offered_load_below_saturation() {
        use netsim::Duration as D;
        let spec = rsm::TrafficSpec::poisson(300.0)
            .with_clients(4)
            .with_batching(60, D::from_millis(40));
        let queue = traffic::SharedTrafficQueue::generate(
            &spec,
            &[1.0, 5.0, 10.0, 20.0],
            17,
            SimTime::from_secs(20),
        );
        let config = PbftHarnessConfig::new(4, 1, 0, skewed_matrix(4))
            .run_for(Duration::from_secs(22))
            .with_traffic(queue.clone());
        let report = PbftHarness::run(&config, "bft-smart", |_| Box::new(StaticPolicy));
        let tr = queue.report(20);
        assert!(tr.offered > 4_500, "~6000 arrivals, got {}", tr.offered);
        assert_eq!(tr.rejected, 0, "no backpressure below saturation");
        assert!(
            tr.committed >= tr.offered - 200,
            "committed {} of {}",
            tr.committed,
            tr.offered
        );
        // Rounds keep rolling (heartbeats between batches), and committed
        // traffic blocks are demand-sized.
        assert!(report.replica_summary.committed_blocks > 20);
        assert!(
            report.client_completed.is_empty(),
            "no client nodes in traffic mode"
        );
        // e2e covers ingress + queueing + consensus + reply: well above the
        // bare consensus latency, bounded by the batching delay + rounds.
        assert!(tr.e2e_mean_ms > report.replica_summary.mean_latency_ms);
    }

    #[test]
    #[should_panic(expected = "clients = 0")]
    fn traffic_mode_rejects_simulated_clients() {
        let spec = rsm::TrafficSpec::poisson(100.0).with_clients(2);
        let queue =
            traffic::SharedTrafficQueue::generate(&spec, &[1.0, 1.0], 0, SimTime::from_secs(1));
        let _ = PbftHarnessConfig::new(4, 1, 2, skewed_matrix(4)).with_traffic(queue);
    }

    #[test]
    fn delay_attack_inflates_latency_for_static_policy() {
        let base =
            PbftHarnessConfig::new(4, 1, 2, skewed_matrix(4)).run_for(Duration::from_secs(40));
        let clean = PbftHarness::run(&base, "bft-smart", |_| Box::new(StaticPolicy));

        let attacked_cfg = PbftHarnessConfig::new(4, 1, 2, skewed_matrix(4))
            .run_for(Duration::from_secs(40))
            .with_delay_attacker(0, Duration::from_millis(500), SimTime::from_secs(10));
        let attacked = PbftHarness::run(&attacked_cfg, "bft-smart", |_| Box::new(StaticPolicy));

        let clean_late = clean.mean_client_latency(15.0, 40.0);
        let attacked_late = attacked.mean_client_latency(15.0, 40.0);
        assert!(
            attacked_late > clean_late * 1.5,
            "attack should inflate latency: clean={clean_late:.1}ms attacked={attacked_late:.1}ms"
        );
    }
}
