//! The chained HotStuff experiment harness: builds a simulation of `n`
//! [`HotStuffNode`] replicas over a latency model, runs it for the configured
//! virtual duration, and reports throughput and consensus latency (one row of
//! Fig 9).

use hotstuff::{HotStuffConfig, HotStuffNode};
use netsim::{FaultPlan, LatencyModel, SimTime, Simulation, SimulationConfig};
use rsm::RunSummary;

/// Result of a HotStuff run.
#[derive(Debug, Clone)]
pub struct HotStuffReport {
    /// Throughput / latency summary measured at replica 0.
    pub summary: RunSummary,
    /// Per-commit `(time s, latency ms)` timeline at the observer replica,
    /// in commit order — the Fig 7-style latency timeline.
    pub latency_timeline: Vec<(f64, f64)>,
    /// Number of views driven during the run.
    pub views: u64,
    /// Per-replica `(view, digest fingerprint)` commit history — the exact
    /// agreement checkpoints the post-run auditor compares across replicas.
    pub commit_checkpoints: Vec<Vec<(u64, u64)>>,
    /// Simulator events processed during the run (engine-throughput metric).
    pub events: u64,
}

/// Run chained HotStuff over the given latency model and report throughput
/// and consensus latency (one row of Fig 9). `faults` injects network-level
/// adversary stages (crashes, delays) exactly as for the other substrates.
pub fn run_hotstuff(
    config: &HotStuffConfig,
    latency: Box<dyn LatencyModel>,
    faults: FaultPlan,
) -> HotStuffReport {
    let n = config.system.n;
    let nodes: Vec<HotStuffNode> = (0..n)
        .map(|id| {
            HotStuffNode::new(id, config.system, config.pacemaker, config.batch_size)
                .with_delays(config.misbehavior.stages_for(id))
                .with_traffic(config.traffic.clone())
                .with_telemetry(config.telemetry.clone())
        })
        .collect();
    let mut sim = Simulation::new(nodes, latency)
        .with_faults(faults)
        .with_telemetry(config.telemetry.clone())
        .with_config(SimulationConfig {
            horizon: SimTime::ZERO + config.run_for,
            max_events: 500_000_000,
        });
    sim.run();
    sim.record_engine_metrics(&config.telemetry);
    let views = sim.node(0).highest_proposed().max(
        sim.nodes()
            .map(|nd| nd.view_count() as u64)
            .max()
            .unwrap_or(0),
    );
    // Observe at a replica that is not the scripted attacker: a delaying
    // leader commits its own views early (it processes its proposal before
    // holding the broadcast), which would hide the very latency the attack
    // inflates everywhere else.
    let observer = (0..n)
        .find(|&i| sim.node(i).stats.blocks() > 0 && config.misbehavior.stages_for(i).is_empty())
        .unwrap_or(0);
    let latency_timeline = sim
        .node(observer)
        .stats
        .latency_timeline()
        .points()
        .to_vec();
    let summary = sim
        .node_mut(observer)
        .stats
        .summary(config.run_for.as_micros() / 1_000_000);
    let commit_checkpoints = sim
        .nodes()
        .map(|nd| {
            nd.view_digests()
                .iter()
                .map(|(view, digest)| (*view, telemetry::fingerprint48(&digest.0)))
                .collect()
        })
        .collect();
    HotStuffReport {
        summary,
        latency_timeline,
        views,
        commit_checkpoints,
        events: sim.events_processed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotstuff::Pacemaker;
    use netsim::{Duration, UniformLatency};
    use traffic::SharedTrafficQueue;

    fn uniform(n: usize, ms: u64) -> Box<dyn LatencyModel> {
        Box::new(UniformLatency::new(n, Duration::from_millis(ms)))
    }

    #[test]
    fn fixed_leader_commits_blocks() {
        let cfg = HotStuffConfig {
            run_for: Duration::from_secs(20),
            ..HotStuffConfig::new(4, Pacemaker::Fixed { leader: 0 })
        };
        let report = run_hotstuff(&cfg, uniform(4, 25), FaultPlan::none());
        // One view per ~2 one-way delays (50 ms); 20 s → ~400 views, each
        // committing a 1000-command block two views later.
        assert!(report.summary.committed_blocks > 200, "{report:?}");
        assert!(report.summary.throughput_ops > 5_000.0);
        // Commit latency ≈ 2–3 view rounds (≥ 100 ms at the leader).
        assert!(report.summary.mean_latency_ms >= 99.0);
        assert!(report.summary.mean_latency_ms < 400.0);
    }

    #[test]
    fn latency_timeline_is_nonempty_monotone_and_consistent() {
        let cfg = HotStuffConfig {
            run_for: Duration::from_secs(20),
            ..HotStuffConfig::new(4, Pacemaker::Fixed { leader: 0 })
        };
        let report = run_hotstuff(&cfg, uniform(4, 25), FaultPlan::none());
        let tl = &report.latency_timeline;
        assert_eq!(tl.len() as u64, report.summary.committed_blocks);
        assert!(
            tl.windows(2).all(|w| w[0].0 <= w[1].0),
            "commit times must be monotone"
        );
        // On a quiet run, the timeline's mean matches the summary's mean.
        let mean = tl.iter().map(|&(_, v)| v).sum::<f64>() / tl.len() as f64;
        assert!(
            (mean - report.summary.mean_latency_ms).abs() < 1.0,
            "timeline mean {mean:.1} vs summary {:.1}",
            report.summary.mean_latency_ms
        );
    }

    #[test]
    fn scripted_leader_delay_inflates_latency_protocol_side() {
        let mk = |attack: bool| {
            let mut cfg = HotStuffConfig {
                run_for: Duration::from_secs(30),
                ..HotStuffConfig::new(4, Pacemaker::Fixed { leader: 0 })
            };
            if attack {
                cfg.misbehavior.delay_proposals_during(
                    0,
                    Duration::from_millis(500),
                    SimTime::from_secs(10),
                    SimTime::from_secs(20),
                );
            }
            run_hotstuff(&cfg, uniform(4, 25), FaultPlan::none())
        };
        let clean = mk(false);
        let attacked = mk(true);
        let window_mean = |r: &HotStuffReport, from: f64, to: f64| {
            rsm::timeline_mean(&r.latency_timeline, from, to)
        };
        // During the stage every commit pays the 500 ms hold (several times
        // over, since the three-chain stretches across held views)…
        let clean_mid = window_mean(&clean, 12.0, 22.0);
        let attacked_mid = window_mean(&attacked, 12.0, 22.0);
        assert!(
            attacked_mid > clean_mid + 400.0,
            "hold should inflate latency: clean={clean_mid:.1}ms attacked={attacked_mid:.1}ms"
        );
        // …and once the stage closes the protocol drains back to clean latency.
        let attacked_late = window_mean(&attacked, 25.0, 30.0);
        assert!(
            attacked_late < clean_mid * 2.0,
            "latency should recover after the stage: {attacked_late:.1}ms"
        );
    }

    #[test]
    fn open_loop_traffic_commits_offered_load_below_saturation() {
        // 200 cmd/s offered against a capacity of thousands: every command
        // should commit, and blocks should be timeout-flushed partials (the
        // saturated source would commit 1000-command blocks instead).
        let spec = rsm::TrafficSpec::poisson(200.0)
            .with_clients(4)
            .with_batching(100, Duration::from_millis(40));
        let queue =
            SharedTrafficQueue::generate(&spec, &[1.0, 2.0, 5.0, 10.0], 99, SimTime::from_secs(20));
        let mut cfg = HotStuffConfig {
            run_for: Duration::from_secs(22),
            ..HotStuffConfig::new(4, Pacemaker::Fixed { leader: 0 })
        };
        cfg.traffic = Some(queue.clone());
        let report = run_hotstuff(&cfg, uniform(4, 10), FaultPlan::none());
        let tr = queue.report(20);
        assert!(
            tr.offered > 3_000,
            "~4000 arrivals over 20 s, got {}",
            tr.offered
        );
        assert_eq!(tr.rejected, 0, "no backpressure below saturation");
        // All but the last in-flight views' worth of commands commit.
        assert!(
            tr.committed >= tr.offered - 300,
            "committed {} of {}",
            tr.committed,
            tr.offered
        );
        assert_eq!(tr.committed, tr.goodput, "all commits meet a 1 s SLO here");
        // Blocks are demand-sized, far below the saturated 1000.
        let per_block =
            report.summary.committed_commands as f64 / report.summary.committed_blocks as f64;
        assert!(per_block < 150.0, "mean block size {per_block}");
        // End-to-end latency includes ingress, batching wait, and commit.
        assert!(tr.e2e_mean_ms > 40.0, "e2e mean {}", tr.e2e_mean_ms);
    }

    #[test]
    fn bursty_traffic_tail_commits_before_the_next_burst() {
        // On/off load with a 3 s silence between bursts: the final batch of
        // each burst must commit via empty chain-flush blocks right away,
        // not wait out the off-phase for two more batches to arrive.
        let spec = rsm::TrafficSpec::poisson(0.0)
            .with_arrivals(rsm::ArrivalProcess::OnOff {
                rate: 800.0,
                on: Duration::from_secs(1),
                off: Duration::from_secs(3),
            })
            .with_clients(4)
            .with_batching(100, Duration::from_millis(40))
            .with_slo(Duration::from_secs(1));
        let queue = SharedTrafficQueue::generate(&spec, &[1.0; 4], 13, SimTime::from_secs(16));
        let mut cfg = HotStuffConfig {
            run_for: Duration::from_secs(18),
            ..HotStuffConfig::new(4, Pacemaker::Fixed { leader: 0 })
        };
        cfg.traffic = Some(queue.clone());
        run_hotstuff(&cfg, uniform(4, 10), FaultPlan::none());
        let tr = queue.report(16);
        assert!(
            tr.offered > 2_000,
            "four bursts of ~800, got {}",
            tr.offered
        );
        assert!(
            tr.committed >= tr.offered - 120,
            "committed {} of {}",
            tr.committed,
            tr.goodput
        );
        // Without the chain flush every burst tail waits ~3 s and blows the
        // 1 s SLO; with it, virtually everything is goodput.
        assert!(
            tr.goodput as f64 >= tr.committed as f64 * 0.95,
            "burst tails must not wait out the off-phase: goodput {} of {} committed (p99 {:.0} ms)",
            tr.goodput,
            tr.committed,
            tr.e2e_p99_ms
        );
    }

    #[test]
    fn round_robin_leaders_share_the_traffic_queue() {
        let spec = rsm::TrafficSpec::poisson(500.0)
            .with_clients(4)
            .with_batching(50, Duration::from_millis(30));
        let queue = SharedTrafficQueue::generate(&spec, &[1.0; 4], 3, SimTime::from_secs(10));
        let mut cfg = HotStuffConfig {
            run_for: Duration::from_secs(12),
            ..HotStuffConfig::new(4, Pacemaker::RoundRobin)
        };
        cfg.traffic = Some(queue.clone());
        run_hotstuff(&cfg, uniform(4, 10), FaultPlan::none());
        let tr = queue.report(10);
        assert!(
            tr.committed >= tr.offered.saturating_sub(200),
            "rotating leaders must drain the shared queue: {} of {}",
            tr.committed,
            tr.offered
        );
    }

    #[test]
    fn round_robin_also_makes_progress() {
        let cfg = HotStuffConfig {
            run_for: Duration::from_secs(10),
            ..HotStuffConfig::new(4, Pacemaker::RoundRobin)
        };
        let report = run_hotstuff(&cfg, uniform(4, 25), FaultPlan::none());
        assert!(report.summary.committed_blocks > 50);
    }

    #[test]
    fn slower_network_lowers_throughput() {
        let mk = |ms| {
            let cfg = HotStuffConfig {
                run_for: Duration::from_secs(15),
                ..HotStuffConfig::new(4, Pacemaker::Fixed { leader: 0 })
            };
            run_hotstuff(&cfg, uniform(4, ms), FaultPlan::none())
                .summary
                .throughput_ops
        };
        assert!(mk(10) > mk(80) * 2.0);
    }
}
