//! The Kauri experiment harness: builds a simulation of `n` [`KauriNode`]
//! replicas sharing an identically-seeded [`TreePolicy`], runs it over a
//! latency model, and aggregates per-root commit statistics into one report
//! (throughput timelines, reconfigurations, committed pair evidence).

use configlog::{ConfigCommand, SuspicionPair};
use kauri::{KauriConfig, KauriNode, Tree, TreePolicy};
use netsim::{FaultPlan, LatencyModel, SimTime, Simulation, SimulationConfig};
use rsm::RunSummary;

/// Result of a Kauri run.
pub struct KauriReport {
    /// Throughput / latency summary aggregated over all roots that served.
    pub summary: RunSummary,
    /// Per-second committed commands across the whole system.
    pub throughput_timeline: Vec<u64>,
    /// Per-commit `(time s, latency ms)` timeline merged across every root
    /// that served, in commit order — the Fig 7-style latency timeline.
    pub latency_timeline: Vec<(f64, f64)>,
    /// Number of tree reconfigurations observed (max over replicas).
    pub reconfigurations: usize,
    /// The tree replica 0's configuration log holds at the end of the run
    /// (the last *committed* configuration).
    pub final_tree: Tree,
    /// Tree epochs replica 0 adopted through the log (excluding genesis).
    pub adopted_epochs: usize,
    /// Suspicion pairs committed through the log (replica 0's view).
    pub committed_pairs: Vec<SuspicionPair>,
    /// Replicas replica 0's policy excludes from internal positions at the
    /// end of the run.
    pub excluded: Vec<usize>,
    /// Per-replica `(epoch, chain head)` adoption history — the exact
    /// agreement checkpoints the post-run auditor compares across replicas.
    pub config_checkpoints: Vec<Vec<(u64, u64)>>,
    /// The observer's committed configuration commands in log order — the
    /// provenance oracle's input (identical across replicas when the
    /// adoption oracle holds).
    pub config_commands: Vec<(u64, ConfigCommand<Tree>)>,
    /// Simulator events processed during the run (engine-throughput metric).
    pub events: u64,
}

/// Run Kauri (or any [`TreePolicy`]-driven variant) over a latency model.
/// `policy_factory(id)` must produce identically-seeded policies so replicas
/// agree on successor trees.
pub fn run_kauri(
    config: &KauriConfig,
    latency: Box<dyn LatencyModel>,
    faults: FaultPlan,
    mut policy_factory: impl FnMut(usize) -> Box<dyn TreePolicy>,
) -> KauriReport {
    let n = config.system.n;
    // All replicas start from the same initial tree: the first tree of a
    // fresh policy instance.
    let initial_tree = policy_factory(usize::MAX).next_tree(n, config.branch);
    let nodes: Vec<KauriNode> = (0..n)
        .map(|id| {
            let mut policy = policy_factory(id);
            // Consume the initial tree so the policy's next call yields tree #2.
            let tree = policy.next_tree(n, config.branch);
            debug_assert_eq!(tree.root, initial_tree.root);
            KauriNode::new(
                id,
                config.system,
                tree,
                policy,
                config.batch_size,
                config.pipeline,
                config.branch,
                config.reconfig_delay,
            )
            .with_delays(config.misbehavior.stages_for(id))
            .with_traffic(config.traffic.clone())
            .with_telemetry(config.telemetry.clone())
        })
        .collect();

    let mut sim = Simulation::new(nodes, latency)
        .with_faults(faults)
        .with_telemetry(config.telemetry.clone())
        .with_config(SimulationConfig {
            horizon: SimTime::ZERO + config.run_for,
            max_events: 500_000_000,
        });
    sim.run();
    sim.record_engine_metrics(&config.telemetry);

    // Aggregate statistics across all replicas (each commit is recorded only
    // at the root that proposed it, so summing does not double-count).
    let run_secs = config.run_for.as_micros() / 1_000_000;
    let mut total_commands = 0u64;
    let mut total_blocks = 0u64;
    let mut latency_weighted = 0.0;
    let mut timeline = vec![0u64; run_secs as usize + 1];
    let mut latency_timeline = Vec::new();
    let mut reconfigurations = 0;
    for id in 0..n {
        let node = sim.node_mut(id);
        let s = node.stats.summary(run_secs);
        total_commands += s.committed_commands;
        total_blocks += s.committed_blocks;
        latency_weighted += s.mean_latency_ms * s.committed_blocks as f64;
        latency_timeline.extend_from_slice(node.stats.latency_timeline().points());
        for (i, &c) in node.throughput.buckets().iter().enumerate() {
            if i < timeline.len() {
                timeline[i] += c;
            }
        }
        reconfigurations = reconfigurations.max(node.reconfig_times.len());
    }
    let config_checkpoints: Vec<Vec<(u64, u64)>> = (0..n)
        .map(|id| sim.node_mut(id).config_checkpoints().to_vec())
        .collect();
    // Each commit is recorded once (at the root that proposed the view);
    // merge the per-root timelines into global commit order. The sort key is
    // total because commit times and latencies are finite by construction.
    latency_timeline.sort_by(|a, b| a.partial_cmp(b).expect("finite timeline points"));
    let mean_latency_ms = if total_blocks > 0 {
        latency_weighted / total_blocks as f64
    } else {
        0.0
    };
    // Span-based throughput over the merged commit timeline (first → last
    // commit across all roots), falling back to the nominal horizon for
    // degenerate spans — mirroring `CommitStats::mean_throughput`.
    let span_secs = match (latency_timeline.first(), latency_timeline.last()) {
        (Some(&(first, _)), Some(&(last, _))) if last > first => last - first,
        _ => run_secs as f64,
    };
    let summary = RunSummary {
        throughput_ops: total_commands as f64 / run_secs as f64,
        sustained_ops: total_commands as f64 / span_secs,
        mean_latency_ms,
        p50_latency_ms: mean_latency_ms,
        p99_latency_ms: mean_latency_ms,
        latency_ci95_ms: 0.0,
        committed_blocks: total_blocks,
        committed_commands: total_commands,
    };
    // Configuration-log diagnostics from the best-informed replica: the
    // longest committed log (lowest id on ties). A replica crashed by the
    // fault plan freezes early and must not be the vantage point, or the
    // report would show the genesis tree for a run that in fact rotated.
    let observer_id = (0..n)
        .max_by_key(|&id| {
            let log = sim.node_mut(id).config_log();
            (log.len(), log.epoch(), std::cmp::Reverse(id))
        })
        .expect("at least one replica");
    let events = sim.events_processed();
    let observer = sim.node_mut(observer_id);
    let log = observer.config_log();
    let final_tree = log.current().config.clone();
    let adopted_epochs = log.epochs().filter(|a| a.epoch > 0).count();
    let committed_pairs = log.pairs().to_vec();
    let config_commands = log
        .commands_from(0)
        .map(|(seq, cmd)| (seq, cmd.clone()))
        .collect();
    let excluded = observer.policy().excluded();
    KauriReport {
        summary,
        throughput_timeline: timeline,
        latency_timeline,
        reconfigurations,
        final_tree,
        adopted_epochs,
        committed_pairs,
        excluded,
        config_checkpoints,
        config_commands,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kauri::KauriBinsPolicy;
    use netsim::{Duration, UniformLatency};

    fn uniform(n: usize, ms: u64) -> Box<dyn LatencyModel> {
        Box::new(UniformLatency::new(n, Duration::from_millis(ms)))
    }

    fn small_config(n: usize, secs: u64) -> KauriConfig {
        let mut c = KauriConfig::new(n);
        c.run_for = Duration::from_secs(secs);
        c
    }

    #[test]
    fn kauri_commits_blocks_on_a_tree() {
        let cfg = small_config(13, 20);
        let report = run_kauri(&cfg, uniform(13, 20), FaultPlan::none(), |_| {
            Box::new(KauriBinsPolicy::new(13, 3, 42))
        });
        assert!(
            report.summary.committed_blocks > 50,
            "{}",
            report.summary.committed_blocks
        );
        assert!(report.summary.throughput_ops > 1_000.0);
        assert_eq!(report.reconfigurations, 0, "no faults, no reconfiguration");
        // Clean run: no reconfiguration, so the genesis tree never needs a
        // committed successor and no evidence ever flows.
        assert_eq!(report.adopted_epochs, 0);
        assert!(report.committed_pairs.is_empty());
        // Tree latency: proposal down two hops, votes up two hops ≈ 4 one-way
        // delays = 80 ms.
        assert!(report.summary.mean_latency_ms >= 75.0);
    }

    #[test]
    fn pipelining_improves_throughput() {
        let base = small_config(13, 20);
        let no_pipe = {
            let cfg = small_config(13, 20).without_pipelining();
            run_kauri(&cfg, uniform(13, 20), FaultPlan::none(), |_| {
                Box::new(KauriBinsPolicy::new(13, 3, 42))
            })
        };
        let piped = run_kauri(&base, uniform(13, 20), FaultPlan::none(), |_| {
            Box::new(KauriBinsPolicy::new(13, 3, 42))
        });
        assert!(
            piped.summary.throughput_ops > no_pipe.summary.throughput_ops * 1.5,
            "pipelined {} vs unpipelined {}",
            piped.summary.throughput_ops,
            no_pipe.summary.throughput_ops
        );
    }

    #[test]
    fn latency_timeline_is_nonempty_monotone_and_consistent() {
        let cfg = small_config(13, 20);
        let report = run_kauri(&cfg, uniform(13, 20), FaultPlan::none(), |_| {
            Box::new(KauriBinsPolicy::new(13, 3, 42))
        });
        let tl = &report.latency_timeline;
        assert_eq!(tl.len() as u64, report.summary.committed_blocks);
        assert!(
            tl.windows(2).all(|w| w[0].0 <= w[1].0),
            "commit times must be monotone"
        );
        // On a quiet run the timeline's mean matches the aggregated mean.
        let mean = tl.iter().map(|&(_, v)| v).sum::<f64>() / tl.len() as f64;
        assert!(
            (mean - report.summary.mean_latency_ms).abs() < 1.0,
            "timeline mean {mean:.1} vs summary {:.1}",
            report.summary.mean_latency_ms
        );
    }

    #[test]
    fn delaying_root_is_detected_and_replaced() {
        let n = 13;
        let mut cfg = small_config(n, 60);
        let probe_tree = KauriBinsPolicy::new(n, 3, 9).next_tree(n, 3);
        // The initial root withholds every dissemination by more than the
        // view timeout, from t = 10 s on, and never stops on its own.
        cfg.misbehavior.delay_proposals_during(
            probe_tree.root,
            Duration::from_millis(2_500),
            SimTime::from_secs(10),
            SimTime::MAX,
        );
        let report = run_kauri(&cfg, uniform(n, 20), FaultPlan::none(), |_| {
            Box::new(KauriBinsPolicy::new(n, 3, 9))
        });
        assert!(
            report.reconfigurations >= 1,
            "stale proposals must fail the tree"
        );
        // The successor tree was adopted through the committed log, and the
        // staleness evidence is reciprocal pairs, not root blame: the pairs
        // accuse the delayer's downstream-visible hops, with the attacker
        // (here the root itself) as the accused of every phase-1 pair.
        assert!(
            report.adopted_epochs >= 1,
            "adoption must flow through the log"
        );
        assert!(
            !report.committed_pairs.is_empty(),
            "staleness must leave committed pair evidence"
        );
        assert!(
            report
                .committed_pairs
                .iter()
                .filter(|p| !p.reciprocal && p.phase == 1)
                .all(|p| p.accused == probe_tree.root),
            "phase-1 pairs name the withholding root: {:?}",
            report.committed_pairs
        );
        let window = |from: f64, to: f64| -> Vec<f64> {
            report
                .latency_timeline
                .iter()
                .filter(|&&(t, _)| t >= from && t < to)
                .map(|&(_, v)| v)
                .collect()
        };
        // The withheld views that did commit show the hold as a latency spike…
        let spike = window(10.0, 20.0).into_iter().fold(0.0f64, f64::max);
        assert!(
            spike > 2_000.0,
            "withheld commits should carry the hold, max was {spike:.1}ms"
        );
        // …and the tail of the run is back to clean tree latency.
        let late = window(40.0, 60.0);
        assert!(!late.is_empty(), "no commits after recovery");
        let late_mean = late.iter().sum::<f64>() / late.len() as f64;
        assert!(
            late_mean < 500.0,
            "latency should recover after the root is replaced, got {late_mean:.1}ms"
        );
    }

    #[test]
    fn delaying_intermediate_holds_forwarded_payloads() {
        // n = 7, branch 2: the tree is root + 2 intermediates + 4 leaves, so
        // the quorum of 5 cannot form without the delayed subtree and the
        // hold is visible in commit latency.
        let n = 7;
        let run = |attack: bool| {
            let mut cfg = small_config(n, 20);
            cfg.pipeline = 1;
            let b = cfg.branch;
            let probe_tree = KauriBinsPolicy::new(n, b, 7).next_tree(n, b);
            let victim = probe_tree.intermediates[0];
            if attack {
                // A short, sub-timeout hold: latency inflates but nothing
                // reconfigures (the hold stays under the view timeout, like
                // the paper's covert performance adversary).
                cfg.misbehavior.delay_proposals_during(
                    victim,
                    Duration::from_millis(300),
                    SimTime::from_secs(5),
                    SimTime::from_secs(15),
                );
            }
            run_kauri(&cfg, uniform(n, 20), FaultPlan::none(), move |_| {
                Box::new(KauriBinsPolicy::new(n, b, 7))
            })
        };
        let clean = run(false);
        let attacked = run(true);
        assert_eq!(
            attacked.reconfigurations, 0,
            "sub-timeout holds stay covert"
        );
        let mean_in =
            |r: &KauriReport, from: f64, to: f64| rsm::timeline_mean(&r.latency_timeline, from, to);
        let clean_mid = mean_in(&clean, 5.0, 15.0);
        let attacked_mid = mean_in(&attacked, 5.0, 15.0);
        assert!(
            attacked_mid > clean_mid + 200.0,
            "held forwards should inflate commit latency: clean={clean_mid:.1}ms attacked={attacked_mid:.1}ms"
        );
        // Outside the stage the two runs are equally fast.
        let attacked_late = mean_in(&attacked, 16.0, 20.0);
        assert!(
            attacked_late < clean_mid + 50.0,
            "latency should return to clean once the stage closes: {attacked_late:.1}ms"
        );
    }

    #[test]
    fn open_loop_traffic_commits_offered_load_below_saturation() {
        let spec = rsm::TrafficSpec::poisson(300.0)
            .with_clients(4)
            .with_batching(60, Duration::from_millis(40));
        let queue = traffic::SharedTrafficQueue::generate(
            &spec,
            &[1.0, 3.0, 6.0, 9.0],
            21,
            SimTime::from_secs(20),
        );
        let mut cfg = small_config(13, 22);
        cfg.traffic = Some(queue.clone());
        let report = run_kauri(&cfg, uniform(13, 20), FaultPlan::none(), |_| {
            Box::new(KauriBinsPolicy::new(13, 3, 42))
        });
        let tr = queue.report(20);
        assert!(tr.offered > 4_000, "~6000 arrivals, got {}", tr.offered);
        assert_eq!(tr.rejected, 0);
        assert!(
            tr.committed >= tr.offered - 400,
            "committed {} of {}",
            tr.committed,
            tr.offered
        );
        // Demand-sized blocks, not saturated 1000-command ones.
        let per_block =
            report.summary.committed_commands as f64 / report.summary.committed_blocks as f64;
        assert!(per_block < 100.0, "mean block size {per_block}");
    }

    #[test]
    fn traffic_queue_survives_root_crash_and_reconfiguration() {
        // The root crashes mid-run; after the progress timer moves everyone
        // to the next tree, the *new* root keeps draining the shared queue.
        let n = 13;
        let probe_tree = KauriBinsPolicy::new(n, 3, 9).next_tree(n, 3);
        let spec = rsm::TrafficSpec::poisson(300.0)
            .with_clients(4)
            .with_batching(60, Duration::from_millis(40));
        let queue =
            traffic::SharedTrafficQueue::generate(&spec, &[1.0; 4], 5, SimTime::from_secs(40));
        let mut cfg = small_config(n, 40);
        cfg.traffic = Some(queue.clone());
        let mut faults = FaultPlan::none();
        faults.crash(probe_tree.root, SimTime::from_secs(10));
        let report = run_kauri(&cfg, uniform(n, 20), faults, |_| {
            Box::new(KauriBinsPolicy::new(n, 3, 9))
        });
        assert!(report.reconfigurations >= 1);
        let tr = queue.report(40);
        // The blackout around the crash loses throughput, but the batches
        // in flight when the tree failed are *retried* by the clients, so
        // the tail of the run commits at the offered rate again.
        let late: f64 = tr
            .goodput_timeline
            .iter()
            .filter(|&&(t, _)| t >= 25.0)
            .map(|&(_, v)| v)
            .sum::<f64>()
            / 15.0;
        assert!(
            late > 150.0,
            "post-recovery goodput should approach the 300/s offered rate, got {late:.0}/s"
        );
    }

    #[test]
    fn reconfiguration_retries_dropped_batches() {
        // The root crashes: the views in flight (their batches included) die
        // with the old tree, and the client retry path re-enqueues them —
        // nearly everything offered before and after the blackout commits.
        let n = 13;
        let probe_tree = KauriBinsPolicy::new(n, 3, 9).next_tree(n, 3);
        let spec = rsm::TrafficSpec::poisson(200.0)
            .with_clients(4)
            .with_batching(50, Duration::from_millis(40));
        let queue =
            traffic::SharedTrafficQueue::generate(&spec, &[1.0; 4], 5, SimTime::from_secs(35));
        let mut cfg = small_config(n, 50);
        cfg.traffic = Some(queue.clone());
        let mut faults = FaultPlan::none();
        faults.crash(probe_tree.root, SimTime::from_secs(10));
        let report = run_kauri(&cfg, uniform(n, 20), faults, |_| {
            Box::new(KauriBinsPolicy::new(n, 3, 9))
        });
        assert!(report.reconfigurations >= 1);
        let tr = queue.report(50);
        assert!(tr.retried > 0, "the dropped views' batches must be retried");
        // A retried batch is counted once: commits can never exceed offers.
        assert!(tr.committed <= tr.offered);
        assert!(
            tr.committed + tr.abandoned >= tr.offered - spec.batching.max_batch as u64,
            "retries must recover the dropped batches: committed {} + abandoned {} of {}",
            tr.committed,
            tr.abandoned,
            tr.offered
        );
    }

    #[test]
    fn onoff_burst_gap_is_not_read_as_a_silent_root() {
        // An OnOff process whose off-phase (12 s) dwarfs the progress window
        // (6 s): without the flushable-work guard every replica would walk
        // off to the next tree mid-gap and the run would show spurious
        // reconfigurations.
        let n = 13;
        let spec = rsm::TrafficSpec::poisson(300.0)
            .with_arrivals(rsm::ArrivalProcess::OnOff {
                rate: 300.0,
                on: Duration::from_secs(6),
                off: Duration::from_secs(12),
            })
            .with_clients(4)
            .with_batching(60, Duration::from_millis(40));
        let queue =
            traffic::SharedTrafficQueue::generate(&spec, &[1.0; 4], 5, SimTime::from_secs(38));
        let mut cfg = small_config(n, 40);
        cfg.traffic = Some(queue.clone());
        let report = run_kauri(&cfg, uniform(n, 20), FaultPlan::none(), |_| {
            Box::new(KauriBinsPolicy::new(n, 3, 9))
        });
        assert_eq!(
            report.reconfigurations, 0,
            "a burst gap with no flushable work must not strike the root"
        );
        let tr = queue.report(40);
        assert!(
            tr.offered > 1_000,
            "bursts offered load, got {}",
            tr.offered
        );
        assert!(
            tr.committed >= tr.offered - 200,
            "bursty offered load must commit: {} of {}",
            tr.committed,
            tr.offered
        );
    }

    #[test]
    fn crashed_intermediate_triggers_reconfiguration_and_recovery() {
        let cfg = small_config(13, 30);
        // The initial conformity tree for seed 7 has some intermediate; crash
        // one of its internal nodes shortly after start. One crashed subtree
        // (4 of 13) leaves exactly a quorum, so views keep committing — the
        // tree absorbs the crash without failing.
        let probe_tree = KauriBinsPolicy::new(13, 3, 7).next_tree(13, 3);
        let victim = probe_tree.intermediates[0];
        let mut faults = FaultPlan::none();
        faults.crash(victim, SimTime::from_secs(5));
        let report = run_kauri(&cfg, uniform(13, 20), faults, |_| {
            Box::new(KauriBinsPolicy::new(13, 3, 7))
        });
        // The system keeps committing after the crash…
        assert!(report.summary.committed_blocks > 20);
        // …and throughput exists in the second half of the run.
        let late: u64 = report.throughput_timeline[20..].iter().sum();
        assert!(
            late > 0,
            "no progress after the crash: {:?}",
            report.throughput_timeline
        );
    }

    #[test]
    fn view_failure_commits_pairs_against_unresponsive_intermediates() {
        // Crash *two* intermediates: their subtrees (8 of 13) break the
        // quorum of 9, the root's view timeout fires, and the root feeds
        // §6.4 pairs (root, unresponsive-internal) through the log — the
        // replicas left waiting converge on the committed evidence instead
        // of any out-of-band blame.
        let cfg = small_config(13, 30);
        let probe_tree = KauriBinsPolicy::new(13, 3, 7).next_tree(13, 3);
        let (v1, v2) = (probe_tree.intermediates[0], probe_tree.intermediates[1]);
        let mut faults = FaultPlan::none();
        faults.crash(v1, SimTime::from_secs(5));
        faults.crash(v2, SimTime::from_secs(5));
        let report = run_kauri(&cfg, uniform(13, 20), faults, |_| {
            Box::new(KauriBinsPolicy::new(13, 3, 7))
        });
        assert!(
            report.reconfigurations >= 1,
            "quorum loss must fail the tree"
        );
        assert!(report.adopted_epochs >= 1, "the successor tree must commit");
        let late: u64 = report.throughput_timeline[15..].iter().sum();
        assert!(
            late > 0,
            "no progress after the crash: {:?}",
            report.throughput_timeline
        );
        for victim in [v1, v2] {
            assert!(
                report
                    .committed_pairs
                    .iter()
                    .any(|p| p.accused == victim && !p.reciprocal),
                "view failure must leave committed pair evidence against \
                 intermediate {victim}: {:?}",
                report.committed_pairs
            );
        }
        // Crashed replicas cannot reciprocate: their pairs stay one-way.
        assert!(report
            .committed_pairs
            .iter()
            .all(|p| !(p.reciprocal && (p.accuser == v1 || p.accuser == v2))));
    }

    #[test]
    fn root_crash_is_survived_via_progress_timer() {
        let cfg = small_config(13, 40);
        let probe_tree = KauriBinsPolicy::new(13, 3, 9).next_tree(13, 3);
        let root = probe_tree.root;
        let mut faults = FaultPlan::none();
        faults.crash(root, SimTime::from_secs(10));
        let report = run_kauri(&cfg, uniform(13, 20), faults, |_| {
            Box::new(KauriBinsPolicy::new(13, 3, 9))
        });
        assert!(
            report.reconfigurations >= 1,
            "replicas must move to a new tree"
        );
        let late: u64 = report.throughput_timeline[25..].iter().sum();
        assert!(
            late > 0,
            "no progress after root crash: {:?}",
            report.throughput_timeline
        );
        // The successor tree reached every replica as committed log content.
        assert!(report.adopted_epochs >= 1);
        assert_ne!(report.final_tree.root, root, "the crashed root cannot lead");
    }

    /// The acceptance property of the configuration-log migration: a replica
    /// never adopts a tree whose command has not committed. A replica that
    /// misses the local failure detection (modelled here by a replica whose
    /// progress view is fed by the new tree's proposals) still converges —
    /// through the committed prefix, not through any epoch-in-proposal
    /// shortcut.
    #[test]
    fn trees_are_adopted_only_through_committed_commands() {
        let n = 13;
        let probe_tree = KauriBinsPolicy::new(n, 3, 9).next_tree(n, 3);
        let mut faults = FaultPlan::none();
        faults.crash(probe_tree.root, SimTime::from_secs(8));
        let cfg = small_config(n, 30);
        // Run once to observe: every replica's config log must agree on the
        // adopted epochs (committed data is identical everywhere).
        let report = run_kauri(&cfg, uniform(n, 20), faults, |_| {
            Box::new(KauriBinsPolicy::new(n, 3, 9))
        });
        assert!(report.adopted_epochs >= 1);
        assert_ne!(report.final_tree.root, probe_tree.root);
        // The committed successor is the shared policy's next tree, i.e. the
        // adoption came from the log replaying the same committed command at
        // every replica.
        let mut policy = KauriBinsPolicy::new(n, 3, 9);
        let _ = policy.next_tree(n, 3);
        let successor = policy.next_tree(n, 3);
        assert_eq!(report.final_tree, successor);
    }
}
