//! Simulation harnesses for the consensus substrates.
//!
//! The substrate crates (`pbft`, `hotstuff`, `kauri`, `optitree`) are written
//! against the runtime-agnostic `runtime` node API and never import the
//! simulator. This module is where replicas meet `netsim::Simulation`: each
//! harness builds an n-replica simulation over a latency model, drives it for
//! a configured virtual duration, and distils the replicas' statistics into a
//! per-run report consumed by scenarios, sweeps, and the figure binaries.
//! (The other runtime — `runtime::RealCluster` — is driven by the `deployd`
//! crate instead.)

pub mod hotstuff;
pub mod kauri;
pub mod pbft;

pub use self::hotstuff::{run_hotstuff, HotStuffReport};
pub use self::kauri::{run_kauri, KauriReport};
pub use self::pbft::{PbftHarness, PbftHarnessConfig, PbftRunReport};
