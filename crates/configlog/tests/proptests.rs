//! Property tests for the replicated configuration log: adoption is a pure,
//! epoch-monotone function of the committed command order, so replicas that
//! apply the same prefix agree on every adopted configuration.

use configlog::{ConfigCommand, ConfigLog, SuspicionPair};
use netsim::{Duration, SimTime};
use proptest::prelude::*;

type Cmd = ConfigCommand<u64>;

/// Decode one generated tuple into a command: `kind` selects the variant,
/// the remaining fields parameterize it (the vendored proptest offers
/// ranges/tuples/vec, so variants are decoded rather than `prop_oneof`'d).
fn decode(kind: u8, epoch: u64, value: u64, a: usize, b: usize) -> Cmd {
    match kind % 3 {
        0 => ConfigCommand::Config {
            epoch,
            config: value,
        },
        1 => ConfigCommand::Exclude {
            epoch,
            replicas: vec![a, b],
        },
        _ => ConfigCommand::Pair(SuspicionPair {
            accuser: a,
            accused: b,
            round: value % 100,
            phase: (epoch % 3) as u32 + 1,
            reciprocal: value.is_multiple_of(2),
        }),
    }
}

fn decode_all(raw: &[(u8, u64, u64, usize, usize)]) -> Vec<Cmd> {
    raw.iter()
        .map(|&(k, e, v, a, b)| decode(k, e, v, a, b))
        .collect()
}

/// The replica-independent adoption outcome: (epoch, config, seq) history,
/// current epoch, exclusions, and pair count — everything except the local
/// adoption clock.
type Outcome = (Vec<(u64, u64, u64)>, u64, Vec<usize>, usize);

fn outcome(log: &ConfigLog<u64>) -> Outcome {
    (
        log.epochs().map(|a| (a.epoch, a.config, a.seq)).collect(),
        log.epoch(),
        log.excluded().iter().copied().collect(),
        log.pairs().len(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The adopted epoch never decreases, and every adoption strictly
    /// increases it.
    #[test]
    fn epoch_is_monotone(
        raw in prop::collection::vec((0u8..3, 0u64..20, 0u64..1000, 0usize..13, 0usize..13), 0..40)
    ) {
        let mut log = ConfigLog::new(0u64, 6);
        let mut last = log.epoch();
        for (i, cmd) in decode_all(&raw).into_iter().enumerate() {
            let adopted = log.apply(cmd, SimTime::from_millis(i as u64)).map(|a| a.epoch);
            prop_assert!(log.epoch() >= last, "epoch went backwards");
            if let Some(e) = adopted {
                prop_assert!(e > last, "adoption must strictly raise the epoch");
                prop_assert_eq!(e, log.epoch());
            }
            last = log.epoch();
        }
    }

    /// Convergence: replicas applying the same committed order — at
    /// arbitrary, different local times — hold identical adopted
    /// configurations, exclusions, and pair evidence.
    #[test]
    fn same_committed_order_same_adoption(
        raw in prop::collection::vec((0u8..3, 0u64..20, 0u64..1000, 0usize..13, 0usize..13), 0..40),
        skew_ms in 0u64..10_000
    ) {
        let mut a = ConfigLog::new(0u64, 6);
        let mut b = ConfigLog::new(0u64, 6);
        for (i, cmd) in decode_all(&raw).into_iter().enumerate() {
            let t = SimTime::from_millis(i as u64 * 5);
            a.apply(cmd.clone(), t);
            b.apply(cmd, t + Duration::from_millis(skew_ms));
        }
        prop_assert_eq!(outcome(&a), outcome(&b));
        // Only the local adoption clock may differ between the replicas.
        for (ea, eb) in a.epochs().zip(b.epochs()) {
            prop_assert_eq!(ea.epoch, eb.epoch);
            prop_assert_eq!(ea.config, eb.config);
            prop_assert_eq!(ea.seq, eb.seq);
        }
    }

    /// Stale redeliveries are inert: re-applying an already-superseded
    /// configuration command mid-stream changes no adopted state.
    #[test]
    fn stale_redelivery_is_inert(
        raw in prop::collection::vec((0u8..3, 0u64..20, 0u64..1000, 0usize..13, 0usize..13), 1..30),
        dup_at in 0usize..30
    ) {
        let cmds = decode_all(&raw);
        let mut clean = ConfigLog::new(0u64, 6);
        for (i, cmd) in cmds.iter().enumerate() {
            clean.apply(cmd.clone(), SimTime::from_millis(i as u64));
        }
        // Replay the sequence, injecting a duplicate of an earlier Config
        // command (necessarily stale at that point) mid-stream.
        let dup_at = dup_at % cmds.len().max(1);
        let dup = cmds
            .iter()
            .take(dup_at)
            .rev()
            .find(|c| matches!(c, ConfigCommand::Config { .. }))
            .cloned();
        let mut noisy = ConfigLog::new(0u64, 6);
        for (i, cmd) in cmds.iter().enumerate() {
            if i == dup_at {
                if let Some(d) = dup.clone() {
                    noisy.apply(d, SimTime::from_millis(i as u64));
                }
            }
            noisy.apply(cmd.clone(), SimTime::from_millis(i as u64));
        }
        let history_clean: Vec<(u64, u64)> =
            clean.epochs().map(|a| (a.epoch, a.config)).collect();
        let history_noisy: Vec<(u64, u64)> =
            noisy.epochs().map(|a| (a.epoch, a.config)).collect();
        prop_assert_eq!(history_clean, history_noisy);
        prop_assert_eq!(clean.epoch(), noisy.epoch());
    }
}
