//! The epoch-monotone adoption state machine.

use crate::command::{ConfigCommand, SuspicionPair};
use runtime::SimTime;
use rsm::AppendLog;
use std::collections::{BTreeMap, BTreeSet};

/// A configuration adopted from the log, with the bookkeeping the per-epoch
/// judging machinery needs.
#[derive(Debug, Clone, PartialEq)]
pub struct AdoptedConfig<C> {
    /// The adopted epoch.
    pub epoch: u64,
    /// The configuration payload.
    pub config: C,
    /// Log position of the adopting command (0 for the genesis config).
    pub seq: u64,
    /// Local time this replica applied the commit. Replicas apply the same
    /// commands in the same order but at different local times, so this is
    /// the only per-replica field — everything else is identical across the
    /// cluster.
    pub adopted_at: SimTime,
}

/// The replicated configuration log of one replica.
///
/// Commands are applied in *committed order* — the substrate's consensus
/// already totally ordered them — and adoption is a pure function of that
/// order: `Config` commands are adopted iff their epoch exceeds the current
/// one (stale or duplicate deliveries are logged but change nothing),
/// `Exclude` commands merge into a cumulative exclusion set, and `Pair`
/// evidence accumulates for the suspicion monitors' query API.
#[derive(Debug, Clone)]
pub struct ConfigLog<C> {
    /// Every committed command, in order (the replicated log itself).
    log: AppendLog<ConfigCommand<C>>,
    /// Epoch → adopted configuration, bounded by `capacity`.
    history: BTreeMap<u64, AdoptedConfig<C>>,
    current_epoch: u64,
    excluded: BTreeSet<usize>,
    pairs: Vec<SuspicionPair>,
    capacity: usize,
}

impl<C: Clone> ConfigLog<C> {
    /// Create a log holding the genesis configuration as epoch 0, retaining
    /// at most `capacity` past epochs for per-epoch judging.
    pub fn new(genesis: C, capacity: usize) -> Self {
        let mut history = BTreeMap::new();
        history.insert(
            0,
            AdoptedConfig {
                epoch: 0,
                config: genesis,
                seq: 0,
                adopted_at: SimTime::ZERO,
            },
        );
        ConfigLog {
            log: AppendLog::new(),
            history,
            current_epoch: 0,
            excluded: BTreeSet::new(),
            pairs: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// Apply the next committed command (in log order) at local time `now`.
    /// Returns the newly adopted configuration when the command was a
    /// `Config` with an epoch above the current one, `None` otherwise.
    pub fn apply(&mut self, cmd: ConfigCommand<C>, now: SimTime) -> Option<&AdoptedConfig<C>> {
        let seq = self.log.append(cmd.clone());
        match cmd {
            ConfigCommand::Config { epoch, config } => {
                if epoch <= self.current_epoch {
                    return None;
                }
                self.current_epoch = epoch;
                self.history.insert(
                    epoch,
                    AdoptedConfig {
                        epoch,
                        config,
                        seq,
                        adopted_at: now,
                    },
                );
                while self.history.len() > self.capacity {
                    let oldest = *self.history.keys().next().expect("non-empty history");
                    self.history.remove(&oldest);
                }
                self.history.get(&epoch)
            }
            ConfigCommand::Exclude { replicas, .. } => {
                self.excluded.extend(replicas);
                None
            }
            ConfigCommand::Pair(pair) => {
                self.pairs.push(pair);
                None
            }
        }
    }

    /// The currently adopted epoch.
    pub fn epoch(&self) -> u64 {
        self.current_epoch
    }

    /// The currently adopted configuration.
    pub fn current(&self) -> &AdoptedConfig<C> {
        self.history
            .get(&self.current_epoch)
            .expect("current epoch always in history")
    }

    /// The configuration adopted for `epoch`, if still retained.
    pub fn get(&self, epoch: u64) -> Option<&AdoptedConfig<C>> {
        self.history.get(&epoch)
    }

    /// The local time `epoch` was adopted, if still retained.
    pub fn adopted_at(&self, epoch: u64) -> Option<SimTime> {
        self.history.get(&epoch).map(|a| a.adopted_at)
    }

    /// The retained epoch → configuration history, oldest first.
    pub fn epochs(&self) -> impl Iterator<Item = &AdoptedConfig<C>> {
        self.history.values()
    }

    /// Number of committed commands applied so far (the next expected log
    /// position — what a wire-prefix consumer compares against).
    pub fn len(&self) -> u64 {
        self.log.len() as u64
    }

    /// True before any command committed.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// All committed commands from position `from`, in order (the wire
    /// prefix a proposer ships so lagging replicas catch up through the
    /// log, not through gossip).
    pub fn commands_from(&self, from: u64) -> impl Iterator<Item = (u64, &ConfigCommand<C>)> {
        self.log.iter_from(from).map(|e| (e.seq, &e.value))
    }

    /// The cumulative exclusion set from committed `Exclude` commands.
    pub fn excluded(&self) -> &BTreeSet<usize> {
        &self.excluded
    }

    /// All committed suspicion pairs, in log order — the query API the
    /// suspicion monitor judges against.
    pub fn pairs(&self) -> &[SuspicionPair] {
        &self.pairs
    }

    /// True if a round straddles an epoch boundary: its predecessor ran
    /// under a different configuration, so its quorum assembled under a mix
    /// of old and new weights and its timings belong to neither epoch.
    pub fn is_boundary_round(record_epoch: u64, prev_epoch: Option<u64>) -> bool {
        prev_epoch != Some(record_epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::Duration;

    fn cfg(epoch: u64, v: u32) -> ConfigCommand<u32> {
        ConfigCommand::Config { epoch, config: v }
    }

    fn pair(accuser: usize, accused: usize, round: u64) -> SuspicionPair {
        SuspicionPair {
            accuser,
            accused,
            round,
            phase: 1,
            reciprocal: false,
        }
    }

    #[test]
    fn adoption_is_epoch_monotone() {
        let mut log = ConfigLog::new(0u32, 8);
        assert_eq!(log.epoch(), 0);
        assert!(log.apply(cfg(2, 20), SimTime::from_secs(1)).is_some());
        assert_eq!(log.epoch(), 2);
        // Stale and duplicate commands are logged but never adopted.
        assert!(log.apply(cfg(1, 10), SimTime::from_secs(2)).is_none());
        assert!(log.apply(cfg(2, 99), SimTime::from_secs(2)).is_none());
        assert_eq!(log.current().config, 20);
        assert_eq!(log.len(), 3);
        // Gaps are fine: epochs whose command never committed are skipped.
        let adopted = log.apply(cfg(5, 50), SimTime::from_secs(3)).cloned().expect("adopts");
        assert_eq!(adopted.epoch, 5);
        assert_eq!(adopted.seq, 3);
        assert_eq!(adopted.adopted_at, SimTime::from_secs(3));
        assert_eq!(log.epoch(), 5);
    }

    #[test]
    fn history_keeps_per_epoch_adoption_times_and_prunes() {
        let mut log = ConfigLog::new(0u32, 3);
        for e in 1..=5u64 {
            log.apply(cfg(e, e as u32 * 10), SimTime::ZERO + Duration::from_secs(e));
        }
        // Capacity 3: epochs 3, 4, 5 retained; 0..2 pruned.
        assert!(log.get(2).is_none());
        assert_eq!(log.adopted_at(4), Some(SimTime::from_secs(4)));
        let kept: Vec<u64> = log.epochs().map(|a| a.epoch).collect();
        assert_eq!(kept, vec![3, 4, 5]);
    }

    #[test]
    fn pairs_and_exclusions_accumulate_without_adoption() {
        let mut log = ConfigLog::new(0u32, 4);
        assert!(log.apply(ConfigCommand::Pair(pair(1, 2, 7)), SimTime::ZERO).is_none());
        assert!(log
            .apply(
                ConfigCommand::Exclude {
                    epoch: 0,
                    replicas: vec![4, 5],
                },
                SimTime::ZERO
            )
            .is_none());
        assert_eq!(log.epoch(), 0);
        assert_eq!(log.pairs().len(), 1);
        assert_eq!(log.pairs()[0].accused, 2);
        assert!(log.excluded().contains(&4) && log.excluded().contains(&5));
    }

    #[test]
    fn commands_from_exposes_the_wire_prefix() {
        let mut log = ConfigLog::new(0u32, 4);
        log.apply(cfg(1, 1), SimTime::ZERO);
        log.apply(ConfigCommand::Pair(pair(0, 1, 1)), SimTime::ZERO);
        log.apply(cfg(2, 2), SimTime::ZERO);
        let tail: Vec<u64> = log.commands_from(1).map(|(s, _)| s).collect();
        assert_eq!(tail, vec![1, 2]);
        assert_eq!(log.commands_from(3).count(), 0);
    }

    #[test]
    fn boundary_round_rule() {
        assert!(ConfigLog::<u32>::is_boundary_round(3, Some(2)));
        assert!(ConfigLog::<u32>::is_boundary_round(3, None));
        assert!(!ConfigLog::<u32>::is_boundary_round(3, Some(3)));
    }
}
