//! # configlog — the replicated role-configuration log
//!
//! OptiLog's central discipline is that *role assignments are replicated
//! decisions*: leader weights, voting weights, and tree shapes must be
//! adopted by every honest replica at the same log position, and the
//! misbehavior evidence that drives them (reciprocal suspicion pairs, §6.4)
//! must flow through the same ordered channel. This crate is the
//! protocol-agnostic subsystem all substrates share:
//!
//! * [`ConfigCommand`] — the entries ordered through a substrate's own
//!   commit path: a full role configuration for a new epoch, an explicit
//!   exclusion set, or a [`SuspicionPair`] evidence record.
//! * [`ConfigLog`] — the epoch-monotone adoption state machine. Replicas
//!   apply *committed* commands in log order; a configuration is adopted
//!   only when its command commits with an epoch above the current one, and
//!   the log keeps the full epoch → configuration history (with local
//!   adoption times) that boundary-round bookkeeping and per-epoch timeout
//!   judging need.
//! * A query API ([`ConfigLog::pairs`], [`ConfigLog::excluded`],
//!   [`ConfigLog::get`]) the suspicion monitors judge against.
//!
//! The log is generic over the configuration payload `C`: the PBFT family
//! instantiates it with its weight configuration, the tree overlays with
//! their dissemination tree. Because adoption is a pure function of the
//! committed command sequence, any two replicas that apply the same
//! committed prefix hold identical adopted configurations — the property
//! the proptests in `tests/` pin down.

#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]
pub mod command;
pub mod log;

pub use command::{ConfigCommand, PhaseFilter, SuspicionPair};
pub use log::{AdoptedConfig, ConfigLog};
