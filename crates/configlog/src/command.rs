//! The commands a replicated configuration log orders.

use serde::{Deserialize, Serialize};

/// Reciprocal suspicion-pair evidence (§6.4).
///
/// A receiver that observes a withheld payload cannot attribute the hold to
/// a specific upstream hop without trusting timestamps the attacker itself
/// would supply; what it *can* assert is "either my upstream hop delayed the
/// payload, or I am lying". That assertion is the pair: the receiver is the
/// `accuser`, its upstream hop the `accused`, and at most one of the two is
/// honest-and-wronged. Committed pairs feed the suspicion monitor's
/// conformity binning, which excises the member that keeps reappearing
/// across pairs instead of blaming the root directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuspicionPair {
    /// The replica raising the pair (the payload receiver).
    pub accuser: usize,
    /// Its upstream hop at the time of the observation.
    pub accused: usize,
    /// The consensus round/view the withheld payload belonged to.
    pub round: u64,
    /// The accuser's depth in the dissemination topology (1 = directly under
    /// the root). Enables the causal filter: a phase-1 pair for a round
    /// explains — and filters — the deeper pairs the same hold caused.
    pub phase: u32,
    /// True for a reciprocation: the accused answering an earlier pair with
    /// `⟨False, …⟩`, turning a one-way (crash-flavoured) suspicion into a
    /// mutual pair.
    pub reciprocal: bool,
}

impl SuspicionPair {
    /// Identity for deduplication: one pair per (accuser, accused, round,
    /// direction).
    pub fn key(&self) -> (usize, usize, u64, bool) {
        (self.accuser, self.accused, self.round, self.reciprocal)
    }

    /// The reciprocation the accused answers this pair with.
    pub fn reciprocation(&self) -> SuspicionPair {
        SuspicionPair {
            accuser: self.accused,
            accused: self.accuser,
            round: self.round,
            phase: self.phase,
            reciprocal: true,
        }
    }
}

/// The causal filter over suspicion pairs (§4.2.3, applied to §6.4 pairs):
/// per round, only the lowest-phase (root-most) evidence *seen so far* may
/// act — a pair raised directly under the root explains the deeper echoes
/// the same withheld payload causes, so later, deeper pairs for the round
/// are filtered. Committed order is identical at every replica, so the
/// first-committed-wins tie-break is deterministic cluster-wide.
///
/// Round numbers are only comparable within one configuration epoch (a new
/// proposer may reuse view numbers); callers judging per-epoch views should
/// [`PhaseFilter::reset`] the filter at every epoch adoption.
#[derive(Debug, Clone, Default)]
pub struct PhaseFilter {
    /// Lowest phase accepted per round.
    round_min_phase: std::collections::BTreeMap<u64, u32>,
}

impl PhaseFilter {
    /// Create an empty filter.
    pub fn new() -> Self {
        PhaseFilter::default()
    }

    /// Record evidence for `round` at `phase`; returns false when a lower
    /// phase was already accepted for the round (the evidence is an echo).
    pub fn accept(&mut self, round: u64, phase: u32) -> bool {
        let entry = self.round_min_phase.entry(round).or_insert(phase);
        let filtered = phase > *entry;
        *entry = (*entry).min(phase);
        !filtered
    }

    /// Forget all rounds (call at an epoch boundary when round numbers may
    /// be reused by the next proposer).
    pub fn reset(&mut self) {
        self.round_min_phase.clear();
    }
}

/// One entry of the replicated configuration log, ordered through the
/// substrate's own commit path. Generic over the configuration payload `C`
/// (weight configuration, dissemination tree, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConfigCommand<C> {
    /// A full role configuration proposed for `epoch`. Adopted by
    /// [`crate::ConfigLog::apply`] iff `epoch` exceeds the current one —
    /// the epoch-monotone rule that makes duplicate or stale commands
    /// harmless.
    Config {
        /// The epoch the configuration claims.
        epoch: u64,
        /// The configuration payload.
        config: C,
    },
    /// Replicas excluded from special roles as of `epoch` (merged into the
    /// log's cumulative exclusion set).
    Exclude {
        /// The epoch the exclusion was decided under.
        epoch: u64,
        /// The excluded replicas.
        replicas: Vec<usize>,
    },
    /// Reciprocal suspicion-pair evidence; accumulated for the monitors'
    /// query API, never adopted.
    Pair(SuspicionPair),
}

impl<C> ConfigCommand<C> {
    /// The epoch the command is about, if it carries one.
    pub fn epoch(&self) -> Option<u64> {
        match self {
            ConfigCommand::Config { epoch, .. } | ConfigCommand::Exclude { epoch, .. } => {
                Some(*epoch)
            }
            ConfigCommand::Pair(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reciprocation_swaps_direction_and_flags() {
        let p = SuspicionPair {
            accuser: 3,
            accused: 7,
            round: 42,
            phase: 2,
            reciprocal: false,
        };
        let r = p.reciprocation();
        assert_eq!(r.accuser, 7);
        assert_eq!(r.accused, 3);
        assert_eq!(r.round, 42);
        assert_eq!(r.phase, 2);
        assert!(r.reciprocal);
        assert_ne!(p.key(), r.key());
    }

    #[test]
    fn command_epoch_accessor() {
        let c: ConfigCommand<u32> = ConfigCommand::Config { epoch: 5, config: 1 };
        assert_eq!(c.epoch(), Some(5));
        let e: ConfigCommand<u32> = ConfigCommand::Exclude { epoch: 2, replicas: vec![1] };
        assert_eq!(e.epoch(), Some(2));
        let p: ConfigCommand<u32> = ConfigCommand::Pair(SuspicionPair {
            accuser: 0,
            accused: 1,
            round: 1,
            phase: 1,
            reciprocal: false,
        });
        assert_eq!(p.epoch(), None);
    }

    #[test]
    fn phase_filter_keeps_rootmost_evidence_and_resets_per_epoch() {
        let mut f = PhaseFilter::new();
        assert!(f.accept(10, 1), "first evidence for a round is accepted");
        assert!(!f.accept(10, 2), "deeper echo of the same round is filtered");
        assert!(f.accept(10, 1), "equal-phase evidence still acts");
        // First-committed-wins tie-break: a deeper pair committing first is
        // accepted, and the later root-most pair still acts (and lowers the
        // floor for anything after it).
        assert!(f.accept(11, 2));
        assert!(f.accept(11, 1));
        assert!(!f.accept(11, 2));
        // Epoch boundary: round numbers may be reused by the next proposer.
        f.reset();
        assert!(f.accept(10, 2), "reset forgets previous epochs' rounds");
    }

    #[test]
    fn pair_roundtrips_through_serde() {
        let p = SuspicionPair {
            accuser: 1,
            accused: 2,
            round: 9,
            phase: 1,
            reciprocal: true,
        };
        let bytes = serde_json::to_vec(&p).expect("serializes");
        let back: SuspicionPair = serde_json::from_slice(&bytes).expect("deserializes");
        assert_eq!(p, back);
    }
}
