//! Time as the node API sees it.
//!
//! Time is represented in integer microseconds to keep simulation runs
//! deterministic and free of floating-point accumulation error. [`Duration`]
//! is a separate type so that "point in time" and "span of time" cannot be
//! confused in protocol code.
//!
//! The same pair of types serves both runtimes: inside the discrete-event
//! simulator a [`SimTime`] is virtual time since simulation start; in the
//! real runtime it is wall-clock microseconds since the cluster epoch (the
//! instant the cluster was launched). Protocol code only ever computes with
//! differences and offsets, so it cannot tell the two apart.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in time, measured in microseconds since the run's origin
/// (simulation start or real-cluster launch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of time in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as "never" for disabled timers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Value in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (truncated) milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in seconds as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Construct from fractional milliseconds, rounding to the nearest microsecond.
    pub fn from_millis_f64(ms: f64) -> Self {
        Duration((ms * 1_000.0).round().max(0.0) as u64)
    }

    /// Value in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in (truncated) milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in milliseconds as a float, for reporting and scoring.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in seconds as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiply by a float factor (e.g. the paper's δ multiplier), rounding.
    pub fn mul_f64(self, factor: f64) -> Duration {
        Duration((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// True if this duration is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, other: SimTime) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, other: Duration) {
        self.0 += other.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, k: u64) -> Duration {
        Duration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// The span of time during which something (a fault, a scripted behaviour
/// stage) is active. Pure data — the protocol-level delay stages and the
/// network-level fault plans share it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First instant at which the window is open.
    pub from: SimTime,
    /// First instant at which it is closed again (`None` = forever).
    pub until: Option<SimTime>,
}

impl FaultWindow {
    /// Active for the whole run.
    pub const ALWAYS: FaultWindow = FaultWindow {
        from: SimTime::ZERO,
        until: None,
    };

    /// Active from `from` onwards.
    pub fn starting(from: SimTime) -> Self {
        FaultWindow { from, until: None }
    }

    /// Active in the half-open interval `[from, until)`.
    pub fn between(from: SimTime, until: SimTime) -> Self {
        assert!(from <= until, "fault window ends before it starts");
        FaultWindow {
            from,
            until: Some(until),
        }
    }

    /// True if the window contains `now`.
    pub fn contains(&self, now: SimTime) -> bool {
        now >= self.from && self.until.is_none_or(|u| now < u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_roundtrip() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(Duration::from_secs(1).as_millis(), 1_000);
        assert_eq!(Duration::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(10);
        let d = Duration::from_millis(5);
        assert_eq!((t + d).as_millis(), 15);
        assert_eq!((t + d) - t, d);
        assert_eq!(t - (t + d), Duration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_millis(10);
        let b = Duration::from_millis(4);
        assert_eq!((a + b).as_millis(), 14);
        assert_eq!((a - b).as_millis(), 6);
        assert_eq!((b - a).as_millis(), 0, "subtraction saturates");
        assert_eq!((a * 3).as_millis(), 30);
        assert_eq!((a / 2).as_millis(), 5);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = Duration::from_micros(100);
        assert_eq!(d.mul_f64(1.5).as_micros(), 150);
        assert_eq!(d.mul_f64(0.0).as_micros(), 0);
        assert_eq!(d.mul_f64(1.004).as_micros(), 100);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(8);
        assert_eq!(b.since(a).as_millis(), 3);
        assert_eq!(a.since(b), Duration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", Duration::from_micros(2500)), "2.500ms");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(Duration::from_millis(1) < Duration::from_millis(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }

    #[test]
    fn window_contains_is_half_open() {
        let w = FaultWindow::between(SimTime::from_secs(10), SimTime::from_secs(20));
        assert!(!w.contains(SimTime::from_micros(9_999_999)));
        assert!(w.contains(SimTime::from_secs(10)));
        assert!(w.contains(SimTime::from_micros(19_999_999)));
        assert!(!w.contains(SimTime::from_secs(20)));
        assert!(FaultWindow::ALWAYS.contains(SimTime::ZERO));
        assert!(FaultWindow::starting(SimTime::from_secs(5)).contains(SimTime::from_secs(500)));
    }
}
