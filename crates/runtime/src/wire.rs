//! Wire format for the real runtime.
//!
//! A frame is a 4-byte little-endian length prefix followed by that many
//! bytes of JSON encoding the `(from, msg)` pair. JSON over the vendored
//! `serde_json` keeps the format dependency-free and debuggable with `nc`;
//! the length prefix makes frame boundaries explicit so a reader never has
//! to scan for delimiters inside message bodies.
//!
//! [`WireMsg`] is the bound the real runtime places on a node's message
//! type. It is deliberately *not* part of the [`crate::Node`] trait:
//! simulation-only message types (e.g. test nodes exchanging closures or
//! counters) stay unconstrained, and a substrate opts into real deployment
//! simply by deriving `Serialize`/`Deserialize` on its message enum.

use crate::node::NodeId;
use std::io::{self, Read, Write};

/// Marker bound for messages that can cross a real socket. Blanket-implemented
/// for every serializable, sendable type — never implement it by hand.
pub trait WireMsg: serde::Serialize + serde::de::DeserializeOwned + Send + 'static {}

impl<T: serde::Serialize + serde::de::DeserializeOwned + Send + 'static> WireMsg for T {}

/// Upper bound on a single frame body. A corrupt or malicious length prefix
/// must not make the reader allocate unbounded memory.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Serialize one `(from, msg)` frame into a byte vector (length prefix included).
pub fn encode_frame<M: WireMsg>(from: NodeId, msg: &M) -> io::Result<Vec<u8>> {
    let body = serde_json::to_vec(&(from, msg))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.0))?;
    if body.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame body of {} bytes exceeds MAX_FRAME_BYTES", body.len()),
        ));
    }
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    Ok(frame)
}

/// Write one `(from, msg)` frame.
pub fn write_frame<M: WireMsg, W: Write>(w: &mut W, from: NodeId, msg: &M) -> io::Result<()> {
    let frame = encode_frame(from, msg)?;
    w.write_all(&frame)
}

/// Read one `(from, msg)` frame. An EOF *between* frames surfaces as
/// `ErrorKind::UnexpectedEof` with an empty prefix read — the normal
/// peer-disconnected signal; EOF inside a frame is a protocol error either way.
pub fn read_frame<M: WireMsg, R: Read>(r: &mut R) -> io::Result<(NodeId, M)> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_BYTES"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let (from, msg): (NodeId, M) =
        serde_json::from_slice(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.0))?;
    Ok((from, msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum TestMsg {
        Ping { round: u64 },
        Blob(Vec<u8>),
    }

    #[test]
    fn frame_round_trips_through_a_byte_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, &TestMsg::Ping { round: 17 }).unwrap();
        write_frame(&mut buf, 1, &TestMsg::Blob(vec![0, 255, 128])).unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(
            read_frame::<TestMsg, _>(&mut r).unwrap(),
            (3, TestMsg::Ping { round: 17 })
        );
        assert_eq!(
            read_frame::<TestMsg, _>(&mut r).unwrap(),
            (1, TestMsg::Blob(vec![0, 255, 128]))
        );
        let eof = read_frame::<TestMsg, _>(&mut r).unwrap_err();
        assert_eq!(eof.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn length_prefix_matches_body() {
        let frame = encode_frame(0, &TestMsg::Ping { round: 1 }).unwrap();
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame::<TestMsg, _>(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_body_is_invalid_data() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(b"{{{");
        let err = read_frame::<TestMsg, _>(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
