//! # runtime — the runtime-agnostic node API
//!
//! This crate is the seam between protocol code and the world it runs in.
//! It owns the replica-facing interface every substrate in the OptiLog
//! reproduction programs against:
//!
//! * [`Node`] — the `on_start` / `on_message` / `on_timer` / `on_crash`
//!   callback contract of a protocol participant.
//! * [`Context`] — send / broadcast / multicast / set_timer / cancel_timer /
//!   now, buffered as [`Action`]s the owning runtime drains and executes.
//! * [`SimTime`] / [`Duration`] — microsecond time, virtual or wall-clock.
//! * [`Histogram`] / [`RateCounter`] / [`TimeSeries`] — measurement
//!   collection shared by the experiment harnesses.
//! * [`wire`] — the serializable wire-message bound ([`WireMsg`]) and
//!   length-prefixed framing used when messages cross real sockets.
//! * [`RealCluster`] — the second runtime: OS thread per replica, full-mesh
//!   TCP on localhost, a monotonic wall-clock timer thread.
//!
//! The first runtime is `netsim::Simulation`, the deterministic
//! discrete-event simulator, which depends on this crate and re-exports
//! these types under its old paths. Substrate crates (pbft, hotstuff,
//! kauri, optitree) import **only** this crate — never `netsim` — so the
//! identical replica structs run in both worlds with zero `#[cfg]`-forked
//! protocol logic.

#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]
pub mod node;
pub mod real;
pub mod stats;
pub mod time;
pub mod wire;

pub use node::{Action, Context, Node, NodeId, Payload, TimerId};
pub use real::RealCluster;
pub use stats::{Histogram, RateCounter, TimeSeries};
pub use time::{Duration, FaultWindow, SimTime};
pub use wire::{encode_frame, read_frame, write_frame, WireMsg, MAX_FRAME_BYTES};
