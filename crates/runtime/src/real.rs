//! The real-clock localhost cluster runtime.
//!
//! [`RealCluster`] runs the *same* [`Node`] implementations the simulator
//! drives, but for real: one OS thread per replica, full-mesh length-prefixed
//! TCP over localhost ([`crate::wire`]), and a shared monotonic wall-clock
//! timer thread. No async runtime — plain `std::net` blocking sockets and
//! `std::thread`, which is entirely adequate for the single-machine cluster
//! sizes (n ≤ a few dozen) this repository deploys.
//!
//! Time: `ctx.now` is wall-clock microseconds since the cluster was launched
//! (the *cluster epoch*), delivered as the same [`SimTime`] type the
//! simulator uses. Protocol code computes only with offsets, so it runs
//! unmodified; telemetry spans stamped from `ctx.now` line up on one
//! wall-clock axis across all replicas of the process.
//!
//! Architecture per replica:
//!
//! ```text
//!  peer sockets ──reader threads──▶ mpsc ──▶ replica thread (owns the Node)
//!  timer thread ────────────────────┘            │
//!      ▲                                         ▼ drains Context actions
//!      └── SetTimer/CancelTimer          Send → blocking write to peer socket
//! ```
//!
//! The replica thread is the only one touching the node, so callbacks are
//! serialized exactly as in the simulator — no locks in protocol code, no
//! concurrent callbacks, the same single-threaded state-machine discipline.

use crate::node::{Action, Context, Node, NodeId, TimerId};
use crate::time::SimTime;
use crate::wire::{read_frame, write_frame, WireMsg};
use std::collections::{BinaryHeap, HashSet};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// What a replica's event loop wakes up for.
enum ReplicaEvent<M> {
    /// Run `on_start`.
    Start,
    /// A message arrived (from a peer socket or a zero-latency self-send).
    Deliver { from: NodeId, msg: M },
    /// A timer set by this replica came due.
    TimerFired { timer: TimerId, tag: u64 },
    /// Exit the event loop and hand the node back.
    Shutdown,
}

/// One pending wall-clock timer. Min-ordered by `(due, seq)` — `seq` keeps
/// same-instant timers FIFO like the simulator's tie-break.
struct TimerEntry {
    due: Instant,
    seq: u64,
    replica: NodeId,
    timer: TimerId,
    tag: u64,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we pop earliest-due first.
        other.due.cmp(&self.due).then_with(|| other.seq.cmp(&self.seq))
    }
}

struct TimerInner<M> {
    heap: BinaryHeap<TimerEntry>,
    /// Live (not fired, not cancelled) timers, keyed `(replica, timer id)`.
    /// Cancellation removes the key; the heap entry is skipped when it pops.
    live: HashSet<(NodeId, u64)>,
    senders: Vec<Sender<ReplicaEvent<M>>>,
    seq: u64,
    shutdown: bool,
}

/// The shared wall-clock timer service: one thread sleeping until the
/// earliest deadline, firing timers back into the owning replica's queue.
struct TimerService<M> {
    inner: Mutex<TimerInner<M>>,
    cv: Condvar,
}

impl<M: Send + 'static> TimerService<M> {
    fn new(senders: Vec<Sender<ReplicaEvent<M>>>) -> Self {
        TimerService {
            inner: Mutex::new(TimerInner {
                heap: BinaryHeap::new(),
                live: HashSet::new(),
                senders,
                seq: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn set(&self, replica: NodeId, timer: TimerId, tag: u64, due: Instant) {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.seq;
        inner.seq += 1;
        inner.live.insert((replica, timer.0));
        inner.heap.push(TimerEntry {
            due,
            seq,
            replica,
            timer,
            tag,
        });
        self.cv.notify_one();
    }

    fn cancel(&self, replica: NodeId, timer: TimerId) {
        let mut inner = self.inner.lock().unwrap();
        inner.live.remove(&(replica, timer.0));
        // The heap entry stays until due and is skipped then; no wakeup needed
        // (waking early for a cancelled head would only re-sleep).
    }

    fn stop(&self) {
        self.inner.lock().unwrap().shutdown = true;
        self.cv.notify_all();
    }

    /// The timer thread body.
    fn run(&self) {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.shutdown {
                return;
            }
            let now = Instant::now();
            // Fire everything due.
            while let Some(head) = inner.heap.peek() {
                if head.due > now {
                    break;
                }
                let e = inner.heap.pop().expect("peeked entry pops");
                if inner.live.remove(&(e.replica, e.timer.0)) {
                    // A closed receiver means the replica already shut down;
                    // its timers are moot.
                    let _ = inner.senders[e.replica].send(ReplicaEvent::TimerFired {
                        timer: e.timer,
                        tag: e.tag,
                    });
                }
            }
            inner = match inner.heap.peek().map(|e| e.due) {
                Some(due) => {
                    let wait = due.saturating_duration_since(Instant::now());
                    if wait.is_zero() {
                        continue;
                    }
                    self.cv.wait_timeout(inner, wait).unwrap().0
                }
                None => self.cv.wait(inner).unwrap(),
            };
        }
    }
}

/// Owns one replica: its node, its outgoing sockets, and its event queue.
struct ReplicaWorker<N: Node> {
    id: NodeId,
    n: usize,
    node: N,
    epoch: Instant,
    /// Persistent timer-id allocator state, threaded through each `Context`.
    next_timer: u64,
    /// Outgoing streams, indexed by peer id (`None` at `self.id`).
    peers: Vec<Option<BufWriter<TcpStream>>>,
    timers: Arc<TimerService<N::Msg>>,
    self_tx: Sender<ReplicaEvent<N::Msg>>,
    rx: Receiver<ReplicaEvent<N::Msg>>,
}

impl<N: Node> ReplicaWorker<N>
where
    N::Msg: WireMsg,
{
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// Run the event loop to shutdown; returns the node for post-run inspection.
    fn run(mut self) -> N {
        loop {
            let event = match self.rx.recv() {
                Ok(ev) => ev,
                Err(_) => break, // cluster handle dropped without shutdown
            };
            let mut ctx = Context::new(self.id, self.now(), self.n, self.next_timer);
            match event {
                ReplicaEvent::Start => self.node.on_start(&mut ctx),
                ReplicaEvent::Deliver { from, msg } => self.node.on_message(&mut ctx, from, msg),
                ReplicaEvent::TimerFired { timer, tag } => {
                    self.node.on_timer(&mut ctx, timer, tag)
                }
                ReplicaEvent::Shutdown => break,
            }
            let (actions, next_timer) = ctx.finish();
            self.next_timer = next_timer;
            self.apply(actions);
        }
        self.node
    }

    fn apply(&mut self, actions: Vec<Action<N::Msg>>) {
        let mut touched: Vec<NodeId> = Vec::new();
        for action in actions {
            match action {
                Action::Send { to, payload } => {
                    if to >= self.n {
                        continue;
                    }
                    if to == self.id {
                        // Zero-latency self-delivery, matching the simulator.
                        let _ = self.self_tx.send(ReplicaEvent::Deliver {
                            from: self.id,
                            msg: payload.into_msg(),
                        });
                    } else if let Some(stream) = &mut self.peers[to] {
                        // A failed write means the peer is gone (shutdown or
                        // crash); consensus tolerates the omission, so drop
                        // the message rather than poisoning the event loop.
                        if write_frame(stream, self.id, payload.as_msg()).is_ok()
                            && !touched.contains(&to)
                        {
                            touched.push(to);
                        }
                    }
                }
                Action::SetTimer { timer, delay, tag } => {
                    let due = Instant::now() + std::time::Duration::from_micros(delay.as_micros());
                    self.timers.set(self.id, timer, tag, due);
                }
                Action::CancelTimer { timer } => self.timers.cancel(self.id, timer),
            }
        }
        // One flush per touched peer per callback, not per frame.
        for to in touched {
            if let Some(stream) = &mut self.peers[to] {
                let _ = stream.flush();
            }
        }
    }
}

/// An n-replica cluster running over real localhost sockets on wall-clock time.
///
/// Requires `N::Msg: WireMsg` — i.e. the message enum derives
/// `Serialize`/`Deserialize`. This is where the wire bound lives; the
/// [`Node`] trait itself stays unconstrained for simulation-only types.
pub struct RealCluster<N: Node> {
    txs: Vec<Sender<ReplicaEvent<N::Msg>>>,
    replicas: Vec<JoinHandle<N>>,
    readers: Vec<JoinHandle<()>>,
    timers: Arc<TimerService<N::Msg>>,
    timer_thread: Option<JoinHandle<()>>,
    epoch: Instant,
    addrs: Vec<SocketAddr>,
}

impl<N> RealCluster<N>
where
    N: Node + Send + 'static,
    N::Msg: WireMsg + Clone,
{
    /// Launch a cluster: bind one ephemeral listener per replica on
    /// 127.0.0.1, connect the full mesh, start the timer thread and one
    /// event-loop thread per replica, then deliver `on_start` to everyone.
    pub fn launch(nodes: Vec<N>) -> io::Result<RealCluster<N>> {
        let n = nodes.len();
        assert!(n > 0, "cannot launch an empty cluster");
        let epoch = Instant::now();

        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<io::Result<_>>()?;

        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            txs.push(tx);
            rxs.push(rx);
        }

        // Full mesh: replica i's outgoing stream to every j ≠ i. The listen
        // backlog holds the connections until we accept them below.
        let mut outgoing: Vec<Vec<Option<BufWriter<TcpStream>>>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut row = Vec::with_capacity(n);
            for (j, addr) in addrs.iter().enumerate() {
                if i == j {
                    row.push(None);
                } else {
                    let stream = TcpStream::connect(addr)?;
                    stream.set_nodelay(true)?;
                    row.push(Some(BufWriter::new(stream)));
                }
            }
            outgoing.push(row);
        }

        // Accept the n-1 inbound streams per replica and spawn one reader
        // thread each. Frames carry the sender id, so accept order is
        // irrelevant and no handshake is needed.
        let mut readers = Vec::with_capacity(n.saturating_mul(n.saturating_sub(1)));
        for (j, listener) in listeners.into_iter().enumerate() {
            for _ in 0..n - 1 {
                let (stream, _) = listener.accept()?;
                stream.set_nodelay(true)?;
                let tx = txs[j].clone();
                readers.push(std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream);
                    // EOF or a closed receiver both mean the run is over.
                    while let Ok((from, msg)) = read_frame::<N::Msg, _>(&mut reader) {
                        if tx.send(ReplicaEvent::Deliver { from, msg }).is_err() {
                            break;
                        }
                    }
                }));
            }
        }

        let timers = Arc::new(TimerService::new(txs.clone()));
        let timer_thread = {
            let timers = timers.clone();
            std::thread::spawn(move || timers.run())
        };

        let mut replicas = Vec::with_capacity(n);
        for (id, (node, (rx, peers))) in nodes
            .into_iter()
            .zip(rxs.into_iter().zip(outgoing))
            .enumerate()
        {
            let worker = ReplicaWorker {
                id,
                n,
                node,
                epoch,
                next_timer: 0,
                peers,
                timers: timers.clone(),
                self_tx: txs[id].clone(),
                rx,
            };
            replicas.push(std::thread::spawn(move || worker.run()));
        }

        for tx in &txs {
            tx.send(ReplicaEvent::Start)
                .expect("replica event loop alive at start");
        }

        Ok(RealCluster {
            txs,
            replicas,
            readers,
            timers,
            timer_thread: Some(timer_thread),
            epoch,
            addrs,
        })
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True if the cluster has no replicas (never: launch asserts n > 0).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Wall-clock time since the cluster epoch, in the node API's time type.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// The listen addresses, indexed by replica id (diagnostics).
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Stop every replica and hand the nodes back for post-run inspection
    /// (commit counts, stats structs — the same reads the sim harnesses do).
    pub fn shutdown(mut self) -> Vec<N> {
        for tx in &self.txs {
            let _ = tx.send(ReplicaEvent::Shutdown);
        }
        let nodes: Vec<N> = self
            .replicas
            .drain(..)
            .map(|h| h.join().expect("replica thread panicked"))
            .collect();
        self.timers.stop();
        if let Some(t) = self.timer_thread.take() {
            let _ = t.join();
        }
        // Replica threads dropped their outgoing streams on exit, so every
        // reader sees EOF and exits; txs die with `self`.
        for r in self.readers.drain(..) {
            let _ = r.join();
        }
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Context, Node, NodeId, TimerId};
    use crate::time::Duration;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, Serialize, Deserialize)]
    enum PingMsg {
        Ping(u32),
        Pong(u32),
    }

    /// Node 0 kicks off with a timer, then ping-pongs with node 1 up to
    /// `rounds`; both count what they see.
    struct PingNode {
        rounds: u32,
        pings_seen: u32,
        pongs_seen: u32,
        timer_fired: bool,
    }

    impl Node for PingNode {
        type Msg = PingMsg;

        fn on_start(&mut self, ctx: &mut Context<PingMsg>) {
            if ctx.id == 0 {
                ctx.set_timer(Duration::from_millis(2), 7);
            }
        }

        fn on_message(&mut self, ctx: &mut Context<PingMsg>, from: NodeId, msg: PingMsg) {
            match msg {
                PingMsg::Ping(k) => {
                    self.pings_seen += 1;
                    ctx.send(from, PingMsg::Pong(k));
                }
                PingMsg::Pong(k) => {
                    self.pongs_seen += 1;
                    if k + 1 < self.rounds {
                        ctx.send(from, PingMsg::Ping(k + 1));
                    }
                }
            }
        }

        fn on_timer(&mut self, ctx: &mut Context<PingMsg>, _timer: TimerId, tag: u64) {
            assert_eq!(tag, 7);
            self.timer_fired = true;
            ctx.send(1, PingMsg::Ping(0));
        }
    }

    #[test]
    fn ping_pong_over_real_sockets_and_timers() {
        let mk = |rounds| PingNode {
            rounds,
            pings_seen: 0,
            pongs_seen: 0,
            timer_fired: false,
        };
        let cluster = RealCluster::launch(vec![mk(5), mk(5)]).unwrap();
        // Wall-clock budget: 2 ms timer + 10 localhost round trips.
        std::thread::sleep(std::time::Duration::from_millis(300));
        let nodes = cluster.shutdown();
        assert!(nodes[0].timer_fired, "wall-clock timer must fire");
        assert_eq!(nodes[1].pings_seen, 5);
        assert_eq!(nodes[0].pongs_seen, 5);
    }

    /// A cancelled wall-clock timer must not fire; a kept one must.
    struct CancelNode {
        fired_tags: Vec<u64>,
    }

    impl Node for CancelNode {
        type Msg = PingMsg;

        fn on_start(&mut self, ctx: &mut Context<PingMsg>) {
            let decoy = ctx.set_timer(Duration::from_millis(5), 1);
            ctx.set_timer(Duration::from_millis(10), 2);
            ctx.cancel_timer(decoy);
        }

        fn on_message(&mut self, _ctx: &mut Context<PingMsg>, _from: NodeId, _msg: PingMsg) {}

        fn on_timer(&mut self, _ctx: &mut Context<PingMsg>, _timer: TimerId, tag: u64) {
            self.fired_tags.push(tag);
        }
    }

    #[test]
    fn cancelled_timer_does_not_fire_keeper_does() {
        let cluster = RealCluster::launch(vec![CancelNode { fired_tags: vec![] }]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(200));
        let nodes = cluster.shutdown();
        assert_eq!(nodes[0].fired_tags, vec![2]);
    }

    /// Broadcast from one replica reaches every other over the mesh.
    struct FanoutNode {
        got: Vec<u32>,
    }

    impl Node for FanoutNode {
        type Msg = PingMsg;

        fn on_start(&mut self, ctx: &mut Context<PingMsg>) {
            if ctx.id == 0 {
                ctx.broadcast(PingMsg::Ping(42));
            }
        }

        fn on_message(&mut self, _ctx: &mut Context<PingMsg>, _from: NodeId, msg: PingMsg) {
            if let PingMsg::Ping(v) = msg {
                self.got.push(v);
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<PingMsg>, _t: TimerId, _tag: u64) {}
    }

    #[test]
    fn broadcast_reaches_all_peers() {
        let n = 4;
        let cluster =
            RealCluster::launch((0..n).map(|_| FanoutNode { got: vec![] }).collect()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(200));
        let nodes = cluster.shutdown();
        assert!(nodes[0].got.is_empty(), "no self-delivery on broadcast");
        for node in &nodes[1..] {
            assert_eq!(node.got, vec![42]);
        }
    }
}
