//! The runtime-agnostic node API.
//!
//! A protocol participant is a [`Node`]: a state machine driven entirely by
//! `on_start` / `on_message` / `on_timer` / `on_crash` callbacks. During a
//! callback the node interacts with the world exclusively through the
//! [`Context`] it is handed — it can send, broadcast, multicast, set and
//! cancel timers, and read the current time. The context *buffers* these
//! requests as [`Action`]s; whichever runtime owns the node drains the buffer
//! after the callback returns and makes the actions real:
//!
//! * `netsim::Simulation` schedules them as discrete events on virtual time —
//!   the deterministic simulator used by every experiment harness;
//! * [`crate::RealCluster`] executes them over localhost TCP sockets and a
//!   wall-clock timer thread.
//!
//! Because nodes only ever see `Context`, the *same* replica struct runs
//! unmodified in both worlds; nothing in the protocol code can tell virtual
//! microseconds from wall-clock microseconds.

use crate::time::{Duration, SimTime};
use std::sync::Arc;

/// Identifier of a node (index into the cluster's node vector).
pub type NodeId = usize;

/// Identifier of a timer set by a node. Unique per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub u64);

/// A message payload carried by a delivery: either owned outright (unicast)
/// or shared between all recipients of one broadcast.
///
/// Transparent to [`Node::on_message`] — the runtime unwraps the payload into
/// an owned message at delivery time. Interning broadcasts behind one `Arc`
/// means a 100-replica fan-out costs one allocation, not 100 deep clones.
#[derive(Debug, Clone)]
pub enum Payload<M> {
    /// A unicast payload, owned by its single delivery event.
    Owned(M),
    /// One broadcast payload shared by every recipient's delivery event.
    Shared(Arc<M>),
}

impl<M: Clone> Payload<M> {
    /// Unwrap into an owned message. The last holder of a shared payload
    /// recovers the original value without cloning.
    pub fn into_msg(self) -> M {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(arc) => Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone()),
        }
    }
}

impl<M> Payload<M> {
    /// Borrow the message.
    pub fn as_msg(&self) -> &M {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(arc) => arc,
        }
    }
}

/// An action a node requests from its runtime during a callback.
#[derive(Debug, Clone)]
pub enum Action<M> {
    /// Send `payload` to node `to`.
    Send {
        /// Recipient node.
        to: NodeId,
        /// Owned for unicast, `Arc`-shared for broadcast/multicast fan-out.
        payload: Payload<M>,
    },
    /// Set a timer firing after `delay`, with an opaque `tag` echoed back.
    SetTimer {
        /// The id minted by [`Context::set_timer`] — the one source of truth;
        /// runtimes key their bookkeeping on it and never re-allocate.
        timer: TimerId,
        /// Delay from the current instant.
        delay: Duration,
        /// Opaque tag echoed back to `on_timer`.
        tag: u64,
    },
    /// Cancel a previously set timer.
    CancelTimer {
        /// The timer to cancel.
        timer: TimerId,
    },
}

/// The interface nodes use to interact with the world.
///
/// A `Context` is created fresh for each callback; actions are buffered and
/// applied by the runtime after the callback returns, in order. Runtimes
/// construct one with [`Context::new`] and drain it with [`Context::finish`].
pub struct Context<M> {
    /// Identity of the node being called.
    pub id: NodeId,
    /// Current time (virtual in the simulator, wall-clock µs since cluster
    /// launch in the real runtime).
    pub now: SimTime,
    /// Total number of nodes in the cluster.
    pub n: usize,
    actions: Vec<Action<M>>,
    next_timer: u64,
}

impl<M> Context<M> {
    /// Create a context for one callback. `next_timer` is the runtime's
    /// persistent timer-id allocator state; ids minted during the callback
    /// continue from it, and [`Context::finish`] hands the advanced value
    /// back so the runtime can thread it into the next context.
    pub fn new(id: NodeId, now: SimTime, n: usize, next_timer: u64) -> Self {
        Context {
            id,
            now,
            n,
            actions: Vec::new(),
            next_timer,
        }
    }

    /// Send a message to a single node. Sending to self is allowed and is
    /// delivered with zero latency (next event at the same instant).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send {
            to,
            payload: Payload::Owned(msg),
        });
    }

    /// Send a message to every node except the sender.
    ///
    /// The payload is interned behind one `Arc` shared by all recipients:
    /// a broadcast costs O(1) payload clones regardless of fan-out.
    pub fn broadcast(&mut self, msg: M) {
        let shared = Arc::new(msg);
        for to in 0..self.n {
            if to != self.id {
                self.actions.push(Action::Send {
                    to,
                    payload: Payload::Shared(shared.clone()),
                });
            }
        }
    }

    /// Send a message to every node in `targets` (skipping self-sends is the
    /// caller's choice; they are allowed). Like [`Context::broadcast`], the
    /// payload is shared, not cloned per recipient.
    pub fn multicast(&mut self, targets: &[NodeId], msg: M) {
        match targets {
            [] => {}
            [to] => self.actions.push(Action::Send {
                to: *to,
                payload: Payload::Owned(msg),
            }),
            _ => {
                let shared = Arc::new(msg);
                for &to in targets {
                    self.actions.push(Action::Send {
                        to,
                        payload: Payload::Shared(shared.clone()),
                    });
                }
            }
        }
    }

    /// Set a timer firing `delay` from now. The `tag` is echoed back to
    /// `on_timer` so a node can multiplex many logical timers.
    ///
    /// The context mints the [`TimerId`] and embeds it in the buffered
    /// [`Action::SetTimer`], so the id returned here and the id the runtime
    /// schedules are one and the same allocation.
    pub fn set_timer(&mut self, delay: Duration, tag: u64) -> TimerId {
        let timer = TimerId(self.next_timer);
        self.next_timer += 1;
        self.actions.push(Action::SetTimer { timer, delay, tag });
        timer
    }

    /// Cancel a previously set timer. Cancelling an already-fired timer is a no-op.
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.actions.push(Action::CancelTimer { timer });
    }

    /// Consume the context, yielding the buffered actions and the advanced
    /// timer-id allocator state for the runtime to persist.
    pub fn finish(self) -> (Vec<Action<M>>, u64) {
        (self.actions, self.next_timer)
    }
}

/// A protocol participant driven by a runtime.
pub trait Node {
    /// Message type exchanged between nodes of this cluster.
    type Msg: Clone;

    /// Called once at cluster start (time zero).
    fn on_start(&mut self, ctx: &mut Context<Self::Msg>);

    /// Called when a message from `from` is delivered.
    fn on_message(&mut self, ctx: &mut Context<Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set by this node fires.
    fn on_timer(&mut self, ctx: &mut Context<Self::Msg>, timer: TimerId, tag: u64);

    /// Called when the node is crashed by a fault plan. Default: no-op.
    fn on_crash(&mut self, _now: SimTime) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_timer_mints_sequential_ids_and_embeds_them() {
        let mut ctx: Context<()> = Context::new(0, SimTime::ZERO, 3, 41);
        let a = ctx.set_timer(Duration::from_millis(5), 7);
        let b = ctx.set_timer(Duration::from_millis(9), 8);
        assert_eq!(a, TimerId(41));
        assert_eq!(b, TimerId(42));
        let (actions, next) = ctx.finish();
        assert_eq!(next, 43, "allocator state advances past minted ids");
        match (&actions[0], &actions[1]) {
            (
                Action::SetTimer { timer: t0, tag: 7, .. },
                Action::SetTimer { timer: t1, tag: 8, .. },
            ) => {
                assert_eq!(*t0, a, "the buffered action carries the minted id");
                assert_eq!(*t1, b);
            }
            other => panic!("unexpected actions: {other:?}"),
        }
    }

    #[test]
    fn broadcast_skips_self_and_shares_one_arc() {
        let mut ctx: Context<u32> = Context::new(1, SimTime::ZERO, 4, 0);
        ctx.broadcast(99);
        let (actions, _) = ctx.finish();
        let targets: Vec<NodeId> = actions
            .iter()
            .map(|a| match a {
                Action::Send { to, payload } => {
                    assert!(matches!(payload, Payload::Shared(_)));
                    assert_eq!(*payload.as_msg(), 99);
                    *to
                }
                other => panic!("unexpected action: {other:?}"),
            })
            .collect();
        assert_eq!(targets, vec![0, 2, 3]);
    }

    #[test]
    fn multicast_owns_singleton_and_shares_fanout() {
        let mut ctx: Context<u32> = Context::new(0, SimTime::ZERO, 5, 0);
        ctx.multicast(&[], 1);
        ctx.multicast(&[3], 2);
        ctx.multicast(&[1, 4], 3);
        let (actions, _) = ctx.finish();
        assert_eq!(actions.len(), 3);
        assert!(matches!(
            &actions[0],
            Action::Send { to: 3, payload: Payload::Owned(2) }
        ));
        assert!(matches!(&actions[1], Action::Send { to: 1, payload: Payload::Shared(_) }));
        assert!(matches!(&actions[2], Action::Send { to: 4, payload: Payload::Shared(_) }));
    }

    #[test]
    fn shared_payload_unwraps_without_clone_for_last_holder() {
        let shared = Arc::new(vec![1u8, 2, 3]);
        let a: Payload<Vec<u8>> = Payload::Shared(shared.clone());
        let b: Payload<Vec<u8>> = Payload::Shared(shared);
        assert_eq!(a.as_msg(), &vec![1, 2, 3]);
        // First holder clones (the Arc is still shared)…
        assert_eq!(a.into_msg(), vec![1, 2, 3]);
        // …the last holder takes the original value back out.
        assert_eq!(b.into_msg(), vec![1, 2, 3]);
        assert_eq!(Payload::Owned(7u32).into_msg(), 7);
    }
}
