//! Measurement collection utilities shared by the experiment harnesses:
//! latency histograms, per-second rate counters, and time series.

use crate::time::{Duration, SimTime};
use serde::Serialize;

/// A simple latency histogram with fixed microsecond-resolution samples.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record a duration sample.
    pub fn record(&mut self, d: Duration) {
        self.samples.push(d.as_micros());
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of all samples.
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        Duration::from_micros((sum / self.samples.len() as u128) as u64)
    }

    fn sorted_samples(&mut self) -> &[u64] {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        &self.samples
    }

    /// The `p`-th percentile (0.0–1.0) of the samples, with linear
    /// interpolation between the two bracketing ranks (the R-7 / numpy
    /// `linear` definition). Rounding the fractional rank to a single index
    /// biased p99 low on small windows — a 100-sample p99 must land between
    /// the 99th and 100th order statistic, not on whichever is nearer.
    pub fn percentile(&mut self, p: f64) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let s = self.sorted_samples();
        let rank = (s.len() as f64 - 1.0) * p.clamp(0.0, 1.0);
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        let v = s[lo] as f64 + frac * (s[hi] as f64 - s[lo] as f64);
        Duration::from_micros(v.round() as u64)
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Duration {
        self.percentile(0.5)
    }

    /// Maximum sample.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// Minimum sample.
    pub fn min(&self) -> Duration {
        Duration::from_micros(self.samples.iter().copied().min().unwrap_or(0))
    }

    /// Half-width of the 95% confidence interval of the mean, in milliseconds.
    /// Uses the normal approximation (1.96 σ / √n), matching how the paper's
    /// plots report error bars.
    pub fn ci95_ms(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean().as_micros() as f64;
        let var = self
            .samples
            .iter()
            .map(|&s| {
                let d = s as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / (n as f64 - 1.0);
        1.96 * (var / n as f64).sqrt() / 1000.0
    }
}

/// Counts events per fixed-size virtual-time bucket (e.g. commits per second),
/// used for throughput timelines like Fig 15.
#[derive(Debug, Clone, Serialize)]
pub struct RateCounter {
    bucket: Duration,
    counts: Vec<u64>,
}

impl RateCounter {
    /// Create a counter with the given bucket width.
    pub fn new(bucket: Duration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be non-zero");
        RateCounter {
            bucket,
            counts: Vec::new(),
        }
    }

    /// Record `count` events at virtual time `at`.
    pub fn record(&mut self, at: SimTime, count: u64) {
        let idx = (at.as_micros() / self.bucket.as_micros()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += count;
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Average rate per bucket over the first `upto` buckets (or all if fewer).
    pub fn mean_rate(&self, upto: usize) -> f64 {
        let n = upto.min(self.counts.len());
        if n == 0 {
            return 0.0;
        }
        self.counts[..n].iter().sum::<u64>() as f64 / n as f64
    }
}

/// A time series of (time, value) points, used for latency timelines (Fig 7).
#[derive(Debug, Clone, Default, Serialize)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Create an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Append a point (time in seconds, arbitrary value).
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.points.push((at.as_secs_f64(), value));
    }

    /// All points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Average value over points whose time lies in `[from, to)` seconds.
    pub fn mean_in_window(&self, from: f64, to: f64) -> f64 {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, v)| *v)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new();
        for ms in [10u64, 20, 30, 40, 50] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean().as_millis(), 30);
        assert_eq!(h.median().as_millis(), 30);
        assert_eq!(h.min().as_millis(), 10);
        assert_eq!(h.max().as_millis(), 50);
        assert_eq!(h.percentile(1.0).as_millis(), 50);
        assert_eq!(h.percentile(0.0).as_millis(), 10);
    }

    #[test]
    fn percentile_interpolates_between_ranks() {
        // 100 samples 1..=100 ms: the exact R-7 percentiles are known in
        // closed form, so this pins the interpolation (the old round-to-
        // nearest-index selection reported 99 ms for p99 and 50 ms for p50).
        let mut h = Histogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        // rank = 99 * p; value = 1 + rank (samples are 1-based and linear).
        assert_eq!(h.percentile(0.99).as_micros(), 99_010); // 1 + 99*0.99 = 99.01 ms
        assert_eq!(h.percentile(0.5).as_micros(), 50_500); // 1 + 49.5 = 50.5 ms
        assert_eq!(h.percentile(0.95).as_micros(), 95_050); // 1 + 94.05 = 95.05 ms
        assert_eq!(h.percentile(0.0).as_millis(), 1);
        assert_eq!(h.percentile(1.0).as_millis(), 100);
        // A single sample is every percentile.
        let mut one = Histogram::new();
        one.record(Duration::from_millis(7));
        assert_eq!(one.percentile(0.99).as_millis(), 7);
    }

    #[test]
    fn histogram_empty_is_safe() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.median(), Duration::ZERO);
        assert_eq!(h.ci95_ms(), 0.0);
    }

    #[test]
    fn histogram_ci_shrinks_with_more_identical_samples() {
        let mut small = Histogram::new();
        let mut large = Histogram::new();
        for i in 0..10u64 {
            small.record(Duration::from_millis(10 + (i % 3)));
        }
        for i in 0..1000u64 {
            large.record(Duration::from_millis(10 + (i % 3)));
        }
        assert!(large.ci95_ms() < small.ci95_ms());
    }

    #[test]
    fn rate_counter_buckets_by_time() {
        let mut r = RateCounter::new(Duration::from_secs(1));
        r.record(SimTime::from_millis(100), 5);
        r.record(SimTime::from_millis(900), 5);
        r.record(SimTime::from_millis(1100), 7);
        assert_eq!(r.buckets(), &[10, 7]);
        assert_eq!(r.total(), 17);
        assert_eq!(r.mean_rate(2), 8.5);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rate_counter_rejects_zero_bucket() {
        RateCounter::new(Duration::ZERO);
    }

    #[test]
    fn time_series_window_mean() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 100.0);
        ts.push(SimTime::from_secs(2), 200.0);
        ts.push(SimTime::from_secs(10), 1000.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.mean_in_window(0.0, 5.0), 150.0);
        assert_eq!(ts.mean_in_window(5.0, 20.0), 1000.0);
        assert_eq!(ts.mean_in_window(20.0, 30.0), 0.0);
    }
}
