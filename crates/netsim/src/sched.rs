//! Event schedulers: the hierarchical timer wheel the engine runs on, and
//! the reference binary-heap scheduler it is benchmarked and property-tested
//! against.
//!
//! Both implement [`EventScheduler`] and pop events in exactly `(time, seq)`
//! order — the determinism contract every `BENCH_*.json` byte depends on.
//! The wheel wins on the hot path:
//!
//! * **O(1) schedule and pop.** An event lands in the bucket of the wheel
//!   level covering its delay (64 slots per level, 6 bits per level, 11
//!   levels cover all of `u64` microseconds). Occupancy bitmasks make
//!   finding the next bucket a couple of `trailing_zeros` instructions
//!   instead of a `log n` heap sift that moves whole events around.
//! * **Slab storage with generation-stamped slots.** Event bodies live in a
//!   free-listed arena; buckets hold `(slot, generation)` handles. Memory is
//!   bounded by the *peak* number of in-flight events, and cancelling a
//!   timer is O(1): bump the slot generation and the stale bucket handle
//!   prunes itself when the wheel reaches it — no grow-forever tombstone
//!   set, no hash lookup per fired timer.
//!
//! Within one bucket, handles are kept in insertion order, which *is* `seq`
//! order: direct schedules arrive with monotonically increasing sequence
//! numbers, and a cascade from a higher level dumps its (already ordered)
//! entries into a lower bucket before any later schedule can append to it.

use crate::event::{Event, EventKind, EventQueue};
use crate::sim::NodeId;
use crate::time::SimTime;
use std::collections::{HashSet, VecDeque};

/// Opaque handle to a scheduled event, used for O(1) cancellation.
pub type EventHandle = u64;

/// Engine-level profiling counters, maintained unconditionally (they are a
/// handful of integer bumps on paths that already touch the same cache
/// lines) and drained into the telemetry registry by the lab. All values
/// are functions of the deterministic event sequence, never of wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineProfile {
    /// Total events ever scheduled.
    pub scheduled: u64,
    /// Total events cancelled before firing.
    pub cancelled: u64,
    /// Higher-level bucket redistributions (timer-wheel cascades).
    pub cascades: u64,
    /// Handles moved by cascades (cascade work, not just occurrences).
    pub cascade_entries: u64,
    /// High-water mark of concurrently pending events (queue depth).
    pub live_high_water: u64,
    /// Slab slots allocated (wheel) or peak tombstones (heap) — the
    /// scheduler's bookkeeping footprint.
    pub bookkeeping_slots: u64,
}

/// A deterministic pending-event store: pops in `(time, seq)` order, where
/// `seq` is the order of `schedule` calls.
///
/// `cancel` may be called at most once per handle and only while the event
/// is still pending (the engine guarantees this by tracking live timers).
pub trait EventScheduler<M>: Default {
    /// Schedule `kind` to fire at `at` (clamped to the current time).
    fn schedule(&mut self, at: SimTime, target: NodeId, kind: EventKind<M>) -> EventHandle;
    /// Cancel a pending event in O(1). Returns false if the handle is stale.
    fn cancel(&mut self, handle: EventHandle) -> bool;
    /// Remove and return the earliest pending event.
    fn pop(&mut self) -> Option<Event<M>>;
    /// The instant of the earliest pending event (may advance internal
    /// cursors, hence `&mut`).
    fn next_time(&mut self) -> Option<SimTime>;
    /// Number of live (scheduled, not yet popped or cancelled) events.
    fn len(&self) -> usize;
    /// True when no live events remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Engine profiling counters accumulated so far.
    fn profile(&self) -> EngineProfile {
        EngineProfile::default()
    }
}

const BITS: usize = 6;
const SLOTS: usize = 1 << BITS;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// 11 levels of 6 bits each cover the full 64-bit microsecond range.
const LEVELS: usize = 11;

struct Slot<M> {
    gen: u32,
    at: u64,
    seq: u64,
    target: NodeId,
    kind: Option<EventKind<M>>,
}

fn handle(idx: u32, gen: u32) -> EventHandle {
    ((idx as u64) << 32) | gen as u64
}

fn split(h: EventHandle) -> (u32, u32) {
    ((h >> 32) as u32, h as u32)
}

/// The hierarchical timer-wheel scheduler the engine runs on.
pub struct TimerWheel<M> {
    slab: Vec<Slot<M>>,
    free: Vec<u32>,
    /// `buckets[level * SLOTS + slot]` holds event handles.
    buckets: Vec<VecDeque<EventHandle>>,
    /// Per-level bucket-occupancy bitmask (bit = slot may hold entries;
    /// entries can be stale until pruned).
    occ: [u64; LEVELS],
    /// Wheel cursor in microsecond ticks; never moves backwards.
    now: u64,
    next_seq: u64,
    live: usize,
    /// Memoised result of `next_tick` (invalidated by schedule/cancel).
    peeked: Option<u64>,
    cancelled: u64,
    cascades: u64,
    cascade_entries: u64,
    live_high_water: usize,
}

impl<M> Default for TimerWheel<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> TimerWheel<M> {
    /// Create an empty wheel positioned at time zero.
    pub fn new() -> Self {
        TimerWheel {
            slab: Vec::new(),
            free: Vec::new(),
            buckets: (0..LEVELS * SLOTS).map(|_| VecDeque::new()).collect(),
            occ: [0; LEVELS],
            now: 0,
            next_seq: 0,
            live: 0,
            peeked: None,
            cancelled: 0,
            cascades: 0,
            cascade_entries: 0,
            live_high_water: 0,
        }
    }

    /// Slab capacity: peak concurrent events ever held (bookkeeping is
    /// bounded by this, not by the total number of events scheduled).
    pub fn slab_capacity(&self) -> usize {
        self.slab.len()
    }

    /// The level whose bucket granularity covers `at` as seen from `now`:
    /// the highest 6-bit group in which they differ.
    fn level_for(now: u64, at: u64) -> usize {
        let diff = now ^ at;
        if diff == 0 {
            0
        } else {
            (63 - diff.leading_zeros() as usize) / BITS
        }
    }

    fn bucket_index(now: u64, at: u64) -> (usize, usize) {
        let level = Self::level_for(now, at);
        let slot = ((at >> (BITS * level)) & SLOT_MASK) as usize;
        (level, slot)
    }

    fn insert(&mut self, idx: u32) {
        let slot = &self.slab[idx as usize];
        let (level, s) = Self::bucket_index(self.now, slot.at);
        let h = handle(idx, slot.gen);
        self.buckets[level * SLOTS + s].push_back(h);
        self.occ[level] |= 1 << s;
    }

    fn is_live(&self, h: EventHandle) -> bool {
        let (idx, gen) = split(h);
        let slot = &self.slab[idx as usize];
        slot.gen == gen && slot.kind.is_some()
    }

    /// Drop stale (cancelled) handles from the front and back of a bucket;
    /// returns true when a live entry remains. Interior stale entries are
    /// skipped at pop time.
    fn prune_bucket(&mut self, level: usize, s: usize) -> bool {
        loop {
            let Some(&h) = self.buckets[level * SLOTS + s].front() else {
                self.occ[level] &= !(1 << s);
                return false;
            };
            if self.is_live(h) {
                return true;
            }
            self.buckets[level * SLOTS + s].pop_front();
        }
    }

    /// Advance the cursor to the earliest live event, cascading higher-level
    /// buckets down as windows are entered, and return its tick.
    fn next_tick(&mut self) -> Option<u64> {
        if let Some(t) = self.peeked {
            return Some(t);
        }
        if self.live == 0 {
            return None;
        }
        'scan: loop {
            // Level 0: buckets hold exactly one tick each within the current
            // 64-tick window; the first occupied bucket at or after the
            // cursor is the next event.
            let cur0 = (self.now & SLOT_MASK) as usize;
            let mut mask = (self.occ[0] >> cur0) << cur0;
            while mask != 0 {
                let s = mask.trailing_zeros() as usize;
                if self.prune_bucket(0, s) {
                    let tick = (self.now & !SLOT_MASK) | s as u64;
                    debug_assert!(tick >= self.now);
                    self.peeked = Some(tick);
                    return Some(tick);
                }
                mask &= !(1 << s);
            }
            // Higher levels: the lowest occupied level holds the earliest
            // window (level l's current rotation ends where level l+1's
            // begins). Cascade its first occupied bucket and rescan.
            for level in 1..LEVELS {
                let shift = BITS * level;
                let cur = ((self.now >> shift) & SLOT_MASK) as usize;
                let mut mask = (self.occ[level] >> cur) << cur;
                while mask != 0 {
                    let s = mask.trailing_zeros() as usize;
                    if !self.prune_bucket(level, s) {
                        mask &= !(1 << s);
                        continue;
                    }
                    // Enter the window: jump the cursor to its start and
                    // redistribute the bucket to strictly lower levels.
                    let above = BITS * (level + 1);
                    let base = if above >= 64 { 0 } else { (self.now >> above) << above };
                    let window_start = base | ((s as u64) << shift);
                    self.now = self.now.max(window_start);
                    self.occ[level] &= !(1 << s);
                    let entries =
                        std::mem::take(&mut self.buckets[level * SLOTS + s]);
                    self.cascades += 1;
                    self.cascade_entries += entries.len() as u64;
                    for h in entries {
                        if self.is_live(h) {
                            let (idx, _) = split(h);
                            debug_assert!(
                                Self::level_for(self.now, self.slab[idx as usize].at) < level
                            );
                            self.insert(idx);
                        }
                    }
                    continue 'scan;
                }
            }
            debug_assert_eq!(self.live, 0, "live events but no occupied bucket");
            return None;
        }
    }
}

impl<M> EventScheduler<M> for TimerWheel<M> {
    fn schedule(&mut self, at: SimTime, target: NodeId, kind: EventKind<M>) -> EventHandle {
        let at = at.as_micros().max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slab[idx as usize];
                slot.at = at;
                slot.seq = seq;
                slot.target = target;
                slot.kind = Some(kind);
                idx
            }
            None => {
                let idx = u32::try_from(self.slab.len()).expect("slab overflow");
                self.slab.push(Slot {
                    gen: 0,
                    at,
                    seq,
                    target,
                    kind: Some(kind),
                });
                idx
            }
        };
        self.insert(idx);
        self.live += 1;
        self.live_high_water = self.live_high_water.max(self.live);
        if self.peeked.is_some_and(|t| at < t) {
            self.peeked = None;
        }
        handle(idx, self.slab[idx as usize].gen)
    }

    fn cancel(&mut self, h: EventHandle) -> bool {
        let (idx, gen) = split(h);
        let Some(slot) = self.slab.get_mut(idx as usize) else {
            return false;
        };
        if slot.gen != gen || slot.kind.is_none() {
            return false;
        }
        slot.kind = None;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
        self.cancelled += 1;
        self.peeked = None;
        true
    }

    fn pop(&mut self) -> Option<Event<M>> {
        let tick = self.next_tick()?;
        self.peeked = None;
        self.now = tick;
        let s = (tick & SLOT_MASK) as usize;
        // `next_tick` pruned the front; the head entry is live and, by the
        // insertion-order invariant, has the smallest seq at this tick.
        let h = self.buckets[s]
            .pop_front()
            .expect("next_tick reported an empty bucket");
        let (idx, gen) = split(h);
        let slot = &mut self.slab[idx as usize];
        debug_assert_eq!(slot.gen, gen);
        debug_assert_eq!(slot.at, tick, "level-0 bucket holds a single tick");
        let kind = slot.kind.take().expect("live handle with empty slot");
        let event = Event {
            at: SimTime::from_micros(slot.at),
            seq: slot.seq,
            target: slot.target,
            kind,
        };
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
        if self.buckets[s].is_empty() {
            self.occ[0] &= !(1 << s);
        }
        Some(event)
    }

    fn next_time(&mut self) -> Option<SimTime> {
        self.next_tick().map(SimTime::from_micros)
    }

    fn len(&self) -> usize {
        self.live
    }

    fn profile(&self) -> EngineProfile {
        EngineProfile {
            scheduled: self.next_seq,
            cancelled: self.cancelled,
            cascades: self.cascades,
            cascade_entries: self.cascade_entries,
            live_high_water: self.live_high_water as u64,
            bookkeeping_slots: self.slab.len() as u64,
        }
    }
}

/// The reference scheduler: the original `BinaryHeap` event queue plus a
/// tombstone set for cancellations.
///
/// Unlike the seed engine, the tombstone set is *bounded*: an id is removed
/// when its event is skipped at the head of the heap, so bookkeeping decays
/// back to zero instead of growing for the life of the simulation.
pub struct HeapScheduler<M> {
    queue: EventQueue<M>,
    cancelled: HashSet<u64>,
    live: usize,
    scheduled: u64,
    cancelled_total: u64,
    live_high_water: usize,
    tombstone_high_water: usize,
}

impl<M> Default for HeapScheduler<M> {
    fn default() -> Self {
        HeapScheduler {
            queue: EventQueue::new(),
            cancelled: HashSet::new(),
            live: 0,
            scheduled: 0,
            cancelled_total: 0,
            live_high_water: 0,
            tombstone_high_water: 0,
        }
    }
}

impl<M> HeapScheduler<M> {
    /// Outstanding cancellation tombstones (test hook for the bounded-
    /// bookkeeping regression test).
    pub fn tombstones(&self) -> usize {
        self.cancelled.len()
    }

    /// Drop cancelled events sitting at the head of the heap, reclaiming
    /// their tombstones.
    fn skip_cancelled(&mut self) {
        while let Some(e) = self.queue.peek() {
            if self.cancelled.remove(&e.seq) {
                self.queue.pop();
            } else {
                return;
            }
        }
    }
}

impl<M> EventScheduler<M> for HeapScheduler<M> {
    fn schedule(&mut self, at: SimTime, target: NodeId, kind: EventKind<M>) -> EventHandle {
        self.live += 1;
        self.scheduled += 1;
        self.live_high_water = self.live_high_water.max(self.live);
        self.queue.schedule(at, target, kind)
    }

    fn cancel(&mut self, h: EventHandle) -> bool {
        self.cancelled.insert(h);
        self.live -= 1;
        self.cancelled_total += 1;
        self.tombstone_high_water = self.tombstone_high_water.max(self.cancelled.len());
        true
    }

    fn pop(&mut self) -> Option<Event<M>> {
        self.skip_cancelled();
        let e = self.queue.pop()?;
        self.live -= 1;
        Some(e)
    }

    fn next_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.queue.next_time()
    }

    fn len(&self) -> usize {
        self.live
    }

    fn profile(&self) -> EngineProfile {
        EngineProfile {
            scheduled: self.scheduled,
            cancelled: self.cancelled_total,
            cascades: 0,
            cascade_entries: 0,
            live_high_water: self.live_high_water as u64,
            bookkeeping_slots: self.tombstone_high_water as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(at: u64) -> (SimTime, EventKind<()>) {
        (SimTime::from_micros(at), EventKind::Crash)
    }

    fn drain<S: EventScheduler<()>>(s: &mut S) -> Vec<(u64, u64, NodeId)> {
        std::iter::from_fn(|| s.pop())
            .map(|e| (e.at.as_micros(), e.seq, e.target))
            .collect()
    }

    #[test]
    fn wheel_pops_in_time_then_seq_order() {
        let mut w: TimerWheel<()> = TimerWheel::new();
        for (i, at) in [30u64, 10, 20, 10, 1_000_000, 65, 64, 4097].iter().enumerate() {
            let (t, k) = crash(*at);
            w.schedule(t, i, k);
        }
        let order = drain(&mut w);
        let ats: Vec<u64> = order.iter().map(|&(at, _, _)| at).collect();
        assert_eq!(ats, vec![10, 10, 20, 30, 64, 65, 4097, 1_000_000]);
        // The two ties at t=10 pop in schedule order (targets 1 then 3).
        assert_eq!(order[0].2, 1);
        assert_eq!(order[1].2, 3);
    }

    #[test]
    fn wheel_handles_wide_delay_spread() {
        // One event per decade of delay, scheduled in reverse: exercises
        // every wheel level and the cascade path.
        let mut w: TimerWheel<()> = TimerWheel::new();
        let delays: Vec<u64> = (0..12).rev().map(|d| 7 * 10u64.pow(d)).collect();
        for (i, &at) in delays.iter().enumerate() {
            let (t, k) = crash(at);
            w.schedule(t, i, k);
        }
        let ats: Vec<u64> = drain(&mut w).iter().map(|&(at, _, _)| at).collect();
        let mut expect = delays;
        expect.sort_unstable();
        assert_eq!(ats, expect);
    }

    #[test]
    fn wheel_interleaves_schedule_and_pop() {
        // Popping an event schedules a follow-up: the ring-of-pings shape.
        let mut w: TimerWheel<()> = TimerWheel::new();
        let (t, k) = crash(5);
        w.schedule(t, 0, k);
        let mut seen = Vec::new();
        while let Some(e) = w.pop() {
            seen.push(e.at.as_micros());
            if seen.len() < 200 {
                // Mixed short and long hops, including same-tick follow-ups.
                let hop = match seen.len() % 4 {
                    0 => 0,
                    1 => 3,
                    2 => 150,
                    _ => 70_000,
                };
                let (t, k) = crash(e.at.as_micros() + hop);
                w.schedule(t, e.target, k);
            }
        }
        assert_eq!(seen.len(), 200);
        assert!(seen.windows(2).all(|p| p[0] <= p[1]), "non-decreasing pops");
    }

    #[test]
    fn wheel_cancellation_is_o1_and_bounded() {
        let mut w: TimerWheel<()> = TimerWheel::new();
        // Many set/cancel cycles with everything cancelled: bookkeeping must
        // stay at the tiny peak of *concurrently* live events, not grow with
        // the total ever scheduled.
        for round in 0..10_000u64 {
            let (t, k) = crash(round * 10 + 5);
            let a = w.schedule(t, 0, k);
            let (t, k) = crash(round * 10 + 7);
            let b = w.schedule(t, 1, k);
            assert!(w.cancel(b));
            assert!(!w.cancel(b), "double cancel is a stale no-op");
            assert!(w.cancel(a));
        }
        assert_eq!(w.len(), 0);
        assert!(w.slab_capacity() <= 4, "slab reuses freed slots: {}", w.slab_capacity());
        // Cancelled events are really gone; survivors still pop in order.
        let (t, k) = crash(123);
        w.schedule(t, 0, k);
        let (t, k) = crash(45);
        let h = w.schedule(t, 1, k);
        assert!(w.cancel(h));
        let popped = drain(&mut w);
        assert_eq!(popped.len(), 1);
        assert_eq!(popped[0], (123, 20_000, 0));
        assert!(w.slab_capacity() <= 4);
    }

    #[test]
    fn wheel_next_time_matches_pop_and_is_stable() {
        let mut w: TimerWheel<()> = TimerWheel::new();
        for at in [500u64, 20, 300_000] {
            let (t, k) = crash(at);
            w.schedule(t, 0, k);
        }
        while let Some(t) = EventScheduler::<()>::next_time(&mut w) {
            assert_eq!(EventScheduler::<()>::next_time(&mut w), Some(t));
            let e = w.pop().expect("peeked event pops");
            assert_eq!(e.at, t);
        }
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_schedule_in_the_past_clamps_to_now() {
        let mut w: TimerWheel<()> = TimerWheel::new();
        let (t, k) = crash(100);
        w.schedule(t, 0, k);
        assert_eq!(w.pop().unwrap().at.as_micros(), 100);
        let (_, k) = crash(0);
        w.schedule(SimTime::from_micros(10), 1, k);
        assert_eq!(w.pop().unwrap().at.as_micros(), 100, "clamped to the cursor");
    }

    #[test]
    fn profiles_count_schedules_cancels_and_cascades() {
        let mut w: TimerWheel<()> = TimerWheel::new();
        // A long delay forces at least one cascade when the window is
        // entered; a cancelled short timer counts without firing.
        let (t, k) = crash(1_000_000);
        w.schedule(t, 0, k);
        let (t, k) = crash(10);
        let h = w.schedule(t, 1, k);
        assert!(w.cancel(h));
        let _ = drain(&mut w);
        let p = EventScheduler::<()>::profile(&w);
        assert_eq!(p.scheduled, 2);
        assert_eq!(p.cancelled, 1);
        assert!(p.cascades >= 1, "long delay cascades down: {p:?}");
        assert!(p.cascade_entries >= 1);
        assert_eq!(p.live_high_water, 2);
        assert_eq!(p.bookkeeping_slots, 2);

        let mut s: HeapScheduler<()> = HeapScheduler::default();
        let (t, k) = crash(5);
        s.schedule(t, 0, k);
        let (t, k) = crash(9);
        let h = s.schedule(t, 0, k);
        s.cancel(h);
        let _ = drain(&mut s);
        let p = EventScheduler::<()>::profile(&s);
        assert_eq!((p.scheduled, p.cancelled, p.live_high_water), (2, 1, 2));
        assert_eq!(p.cascades, 0);
        assert_eq!(p.bookkeeping_slots, 1, "peak tombstones");
    }

    #[test]
    fn heap_scheduler_reclaims_tombstones() {
        let mut s: HeapScheduler<()> = HeapScheduler::default();
        let mut handles = Vec::new();
        for at in 0..100u64 {
            let (t, k) = crash(at);
            handles.push(s.schedule(t, 0, k));
        }
        for h in handles.iter().skip(1).step_by(2) {
            s.cancel(*h);
        }
        assert_eq!(s.tombstones(), 50);
        assert_eq!(s.len(), 50);
        let popped = drain(&mut s);
        assert_eq!(popped.len(), 50);
        assert_eq!(s.tombstones(), 0, "tombstones are reclaimed on skip");
    }
}
