//! # netsim — deterministic discrete-event network simulator
//!
//! This crate provides the network substrate used by every protocol in the
//! OptiLog reproduction. The paper evaluates OptiLog on a cluster where
//! messages are artificially delayed according to a city-to-city round-trip
//! dataset (WonderProxy, 220 locations). We reproduce that environment with a
//! deterministic discrete-event simulator:
//!
//! * [`SimTime`] — microsecond-resolution virtual time.
//! * [`Simulation`] — the event loop driving a set of [`Node`]s.
//! * [`LatencyModel`] — pluggable per-link one-way latency (uniform, matrix,
//!   geographic).
//! * [`cities`] — a synthetic 220-city dataset calibrated to the paper's
//!   150–250 ms intercontinental RTT range, with the region subsets used in
//!   the evaluation (Europe21, NA-EU43, Stellar56, Global73).
//! * [`faults`] — network-level fault injection (crashes, per-link delay
//!   inflation, partitions, message drops).
//!
//! Determinism: given the same seed and the same node implementations, a
//! simulation produces byte-identical traces. All randomness flows through a
//! seeded [`rand::rngs::StdRng`].

#![cfg_attr(not(test), deny(clippy::print_stdout, clippy::print_stderr))]
pub mod cities;
pub mod event;
pub mod faults;
pub mod latency;
pub mod sched;
pub mod sim;
pub mod stats;
pub mod time;

pub use cities::{City, CityDataset, Region};
pub use event::{Event, EventKind, EventQueue, Payload};
pub use sched::{EngineProfile, EventHandle, EventScheduler, HeapScheduler, TimerWheel};
pub use faults::{FaultPlan, FaultWindow, LinkFault, NodeFault};
pub use latency::{GeoLatency, LatencyModel, MatrixLatency, UniformLatency};
pub use sim::{Action, Context, Node, NodeId, Simulation, SimulationConfig, TimerId};
pub use stats::{Histogram, RateCounter, TimeSeries};
pub use time::{Duration, SimTime};
