//! The discrete-event simulation engine.
//!
//! A [`Simulation`] owns a set of [`Node`]s, a [`LatencyModel`], and a
//! [`FaultPlan`]. Nodes interact with the world exclusively through the
//! [`Context`] handed to their callbacks: they can send messages, broadcast,
//! set timers, and read the current virtual time. The engine delivers
//! messages after the modelled link latency (possibly modified by the fault
//! plan) and fires timers, advancing virtual time from event to event.
//!
//! Internally the engine runs on a pluggable [`EventScheduler`] — the
//! hierarchical [`TimerWheel`] by default, or any other implementation via
//! [`Simulation::with_scheduler`] (the heap baseline is kept for benchmarks
//! and equivalence tests). Broadcast payloads are interned behind one `Arc`
//! per send ([`Payload`]), so the fan-out cost is reference counting, not
//! deep clones.

use crate::event::EventKind;
use crate::faults::FaultPlan;
use crate::latency::LatencyModel;
use crate::sched::{EngineProfile, EventHandle, EventScheduler, TimerWheel};
use crate::time::SimTime;
use std::collections::HashMap;

// The node-facing API — `Node`, `Context`, `Action`, `NodeId`, `TimerId`,
// `Payload` — lives in the runtime-agnostic `runtime` crate; `Simulation` is
// one runtime interpreting the buffered actions (the other is
// `runtime::RealCluster`). Re-exported here so every historical
// `netsim::{Context, Node, …}` path keeps compiling.
pub use runtime::{Action, Context, Node, NodeId, TimerId};

/// Configuration of a simulation run.
pub struct SimulationConfig {
    /// Stop once virtual time reaches this horizon.
    pub horizon: SimTime,
    /// Safety valve: stop after this many events even if the horizon has not
    /// been reached (guards against event storms in buggy protocols).
    pub max_events: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            horizon: SimTime::from_secs(120),
            max_events: 200_000_000,
        }
    }
}

/// The discrete-event simulation engine, generic over its [`EventScheduler`]
/// (the [`TimerWheel`] by default).
pub struct Simulation<N: Node, S: EventScheduler<N::Msg> = TimerWheel<<N as Node>::Msg>> {
    nodes: Vec<N>,
    latency: Box<dyn LatencyModel>,
    faults: FaultPlan,
    sched: S,
    /// Pending timers: engine-assigned id → scheduler handle. An entry is
    /// removed when its timer fires or is cancelled, so bookkeeping is
    /// bounded by the number of *outstanding* timers, not the total ever set.
    live_timers: HashMap<u64, EventHandle>,
    crashed: Vec<bool>,
    now: SimTime,
    next_timer: u64,
    events_processed: u64,
    /// Events processed per virtual second (index = ⌊now⌋ in seconds) — the
    /// windowed events/sec series the telemetry registry surfaces.
    events_timeline: Vec<u64>,
    /// True once the safety valve tripped: the event budget ran out while
    /// deliverable events were still queued. Surfaced as the
    /// `netsim.sim.max_events_hit` counter so a truncated run is never
    /// mistaken for a converged one.
    max_events_hit: bool,
    config: SimulationConfig,
    /// Telemetry handle whose time-series sampler is ticked at simulated
    /// second boundaries (the same boundaries the events timeline rolls
    /// over on). Disabled by default — the tick is then a no-op branch.
    telemetry: telemetry::Telemetry,
}

impl<N: Node> Simulation<N> {
    /// Create a simulation over `nodes` with the given latency model, running
    /// on the default [`TimerWheel`] scheduler.
    pub fn new(nodes: Vec<N>, latency: Box<dyn LatencyModel>) -> Self {
        Self::with_scheduler(nodes, latency, TimerWheel::new())
    }
}

impl<N: Node, S: EventScheduler<N::Msg>> Simulation<N, S> {
    /// Create a simulation running on an explicit scheduler (used by the
    /// engine benchmarks to compare the wheel against the heap baseline).
    pub fn with_scheduler(nodes: Vec<N>, latency: Box<dyn LatencyModel>, sched: S) -> Self {
        let n = nodes.len();
        assert!(
            latency.len() >= n,
            "latency model covers {} nodes, need {n}",
            latency.len()
        );
        Simulation {
            crashed: vec![false; n],
            nodes,
            latency,
            faults: FaultPlan::none(),
            sched,
            live_timers: HashMap::new(),
            now: SimTime::ZERO,
            next_timer: 0,
            events_processed: 0,
            events_timeline: Vec::new(),
            max_events_hit: false,
            config: SimulationConfig::default(),
            telemetry: telemetry::Telemetry::disabled(),
        }
    }

    /// Install a telemetry handle to drive with simulated time: its
    /// windowed time-series sampler (if installed) is ticked whenever the
    /// simulation crosses a virtual-second boundary, so window contents are
    /// a pure function of the event sequence — identical across worker
    /// threads and merge orders.
    pub fn with_telemetry(mut self, telemetry: telemetry::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Install a fault plan. Crash and recovery faults are scheduled as events.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        for (node, at) in faults.crash_schedule() {
            self.sched.schedule(at, node, EventKind::Crash);
        }
        for (node, at) in faults.recovery_schedule() {
            self.sched.schedule(at, node, EventKind::Recover);
        }
        self.faults = faults;
        self
    }

    /// Override the default run configuration.
    pub fn with_config(mut self, config: SimulationConfig) -> Self {
        self.config = config;
        self
    }

    /// Extend (or shrink) the horizon of an in-progress run. Events beyond
    /// the old horizon are still queued — [`Simulation::step`] never drops
    /// them — so stepping again after an extension resumes cleanly.
    pub fn set_horizon(&mut self, horizon: SimTime) {
        self.config.horizon = horizon;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node (e.g. to read statistics after the run).
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id]
    }

    /// Mutable access to a node (e.g. to reconfigure between phases).
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id]
    }

    /// Iterate over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// True if the run was truncated by [`SimulationConfig::max_events`]
    /// while deliverable events were still pending.
    pub fn max_events_hit(&self) -> bool {
        self.max_events_hit
    }

    /// Number of outstanding (set, not yet fired or cancelled) timers the
    /// engine is tracking. Bounded by live timers — test hook for the
    /// bounded-bookkeeping regression tests.
    pub fn timer_bookkeeping(&self) -> usize {
        self.live_timers.len()
    }

    /// Number of events currently pending in the scheduler.
    pub fn pending_events(&self) -> usize {
        self.sched.len()
    }

    /// The scheduler's engine profiling counters (cascades, slab occupancy,
    /// queue-depth high-water). Deterministic — a function of the event
    /// sequence only.
    pub fn engine_profile(&self) -> EngineProfile {
        self.sched.profile()
    }

    /// Events processed per virtual second; index `i` covers `[i, i+1)`
    /// seconds of simulated time.
    pub fn events_per_sec(&self) -> &[u64] {
        &self.events_timeline
    }

    /// Drain the engine profile and event-rate timeline into a telemetry
    /// registry under `netsim.engine.*` / `netsim.sim.*`. Every value is a
    /// deterministic function of the run (simulated time, not wall clock),
    /// so recorded metrics are identical across worker-thread counts.
    pub fn record_engine_metrics(&self, telemetry: &telemetry::Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        // Close any window still open at the end of the run *before* the
        // engine profile lands in the registry: engine metrics describe the
        // whole run and must never be attributed to the final window.
        telemetry.tick_timeseries(self.now.as_micros());
        let p = self.sched.profile();
        telemetry.counter_add("netsim.engine.scheduled", None, p.scheduled);
        telemetry.counter_add("netsim.engine.cancelled", None, p.cancelled);
        telemetry.counter_add("netsim.engine.cascades", None, p.cascades);
        telemetry.counter_add("netsim.engine.cascade_entries", None, p.cascade_entries);
        telemetry.gauge_max("netsim.engine.live_high_water", None, p.live_high_water as f64);
        telemetry.gauge_max(
            "netsim.engine.slots_high_water",
            None,
            p.bookkeeping_slots as f64,
        );
        telemetry.counter_add("netsim.sim.events", None, self.events_processed);
        if self.max_events_hit {
            telemetry.counter_add("netsim.sim.max_events_hit", None, 1);
        }
        let peak = self.events_timeline.iter().copied().max().unwrap_or(0);
        telemetry.gauge_max("netsim.sim.events_per_sec_peak", None, peak as f64);
        for &eps in &self.events_timeline {
            telemetry.observe("netsim.sim.events_per_sec", None, eps);
        }
    }

    fn dispatch_actions(&mut self, from: NodeId, ctx: Context<N::Msg>) {
        // One timer-id allocator: the context mints ids from the engine's
        // counter and hands the advanced value back — the id inside each
        // `SetTimer` action *is* the allocation, nothing to re-derive here.
        let (actions, next_timer) = ctx.finish();
        self.next_timer = next_timer;
        for action in actions {
            match action {
                Action::Send { to, payload } => {
                    if to >= self.nodes.len() {
                        continue;
                    }
                    let base = self.latency.latency(from, to);
                    if let Some(delay) = self.faults.effective_delay(self.now, from, to, base) {
                        self.sched.schedule(
                            self.now + delay,
                            to,
                            EventKind::Deliver { from, payload },
                        );
                    }
                }
                Action::SetTimer { timer, delay, tag } => {
                    let handle =
                        self.sched
                            .schedule(self.now + delay, from, EventKind::Timer { timer, tag });
                    self.live_timers.insert(timer.0, handle);
                }
                Action::CancelTimer { timer } => {
                    // Already-fired (or double-cancelled) timers have no
                    // entry: the cancel is a no-op and leaves no tombstone.
                    if let Some(handle) = self.live_timers.remove(&timer.0) {
                        self.sched.cancel(handle);
                    }
                }
            }
        }
    }

    /// Initialise every node (calls `on_start` at time zero). Called
    /// automatically by [`Simulation::run`], but exposed for step-wise runs.
    pub fn start(&mut self) {
        for id in 0..self.nodes.len() {
            if self.crashed[id] {
                continue;
            }
            let mut ctx = Context::new(id, self.now, self.nodes.len(), self.next_timer);
            self.nodes[id].on_start(&mut ctx);
            self.dispatch_actions(id, ctx);
        }
    }

    /// Process a single event. Returns `false` when the queue is exhausted or
    /// the horizon / event budget is reached.
    ///
    /// An event beyond the horizon stays queued (peek before pop): extending
    /// the horizon with [`Simulation::set_horizon`] and stepping again
    /// delivers it.
    pub fn step(&mut self) -> bool {
        if self.events_processed >= self.config.max_events {
            // The safety valve tripped with deliverable work still queued:
            // remember it, so reports can flag the truncation.
            if self
                .sched
                .next_time()
                .is_some_and(|t| t <= self.config.horizon)
            {
                self.max_events_hit = true;
            }
            return false;
        }
        let next = match self.sched.next_time() {
            Some(t) => t,
            None => return false,
        };
        if next > self.config.horizon {
            self.now = self.config.horizon;
            return false;
        }
        let event = self.sched.pop().expect("peeked event pops");
        self.now = event.at;
        self.events_processed += 1;
        let sec = (self.now.as_micros() / 1_000_000) as usize;
        if sec >= self.events_timeline.len() {
            self.events_timeline.resize(sec + 1, 0);
            // First event in a fresh virtual second: close elapsed
            // time-series windows against the registry as it stood before
            // this event is processed.
            self.telemetry.tick_timeseries(self.now.as_micros());
        }
        self.events_timeline[sec] += 1;
        let id = event.target;
        match event.kind {
            EventKind::Deliver { from, payload } => {
                if self.crashed[id] {
                    // Dropped on the floor: the shared payload is never
                    // unwrapped, so crashed recipients pay no clone.
                    return true;
                }
                let mut ctx = Context::new(id, self.now, self.nodes.len(), self.next_timer);
                let msg = payload.into_msg();
                self.nodes[id].on_message(&mut ctx, from, msg);
                self.dispatch_actions(id, ctx);
            }
            EventKind::Timer { timer, tag } => {
                // Cancelled timers never reach this point (the scheduler
                // drops them); firing retires the bookkeeping entry.
                self.live_timers.remove(&timer.0);
                if self.crashed[id] {
                    return true;
                }
                let mut ctx = Context::new(id, self.now, self.nodes.len(), self.next_timer);
                self.nodes[id].on_timer(&mut ctx, timer, tag);
                self.dispatch_actions(id, ctx);
            }
            EventKind::Crash => {
                self.crashed[id] = true;
                self.nodes[id].on_crash(self.now);
            }
            EventKind::Recover => {
                self.crashed[id] = false;
            }
        }
        true
    }

    /// Run to completion: start all nodes, then process events until the
    /// queue drains, the horizon is reached, or the event budget is exhausted.
    pub fn run(&mut self) {
        self.start();
        while self.step() {}
    }

    /// Run until virtual time reaches `until` (starting nodes if needed).
    pub fn run_until(&mut self, until: SimTime) {
        if self.events_processed == 0 && self.now == SimTime::ZERO {
            self.start();
        }
        while let Some(t) = self.sched.next_time() {
            if t > until {
                self.now = until;
                break;
            }
            if !self.step() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::UniformLatency;
    use crate::sched::HeapScheduler;
    use crate::time::Duration;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A node that floods a token around a ring a fixed number of times.
    struct RingNode {
        hops_seen: u32,
        max_hops: u32,
        deliveries: Vec<(SimTime, u32)>,
    }

    impl Node for RingNode {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<u32>) {
            if ctx.id == 0 {
                ctx.send((ctx.id + 1) % ctx.n, 0);
            }
        }

        fn on_message(&mut self, ctx: &mut Context<u32>, _from: NodeId, hop: u32) {
            self.hops_seen += 1;
            self.deliveries.push((ctx.now, hop));
            if hop < self.max_hops {
                ctx.send((ctx.id + 1) % ctx.n, hop + 1);
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<u32>, _timer: TimerId, _tag: u64) {}
    }

    fn ring(n: usize, max_hops: u32) -> Vec<RingNode> {
        (0..n)
            .map(|_| RingNode {
                hops_seen: 0,
                max_hops,
                deliveries: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn ring_token_passes_with_latency() {
        let n = 5;
        let mut sim = Simulation::new(
            ring(n, 9),
            Box::new(UniformLatency::new(n, Duration::from_millis(10))),
        );
        sim.run();
        // Hops 0..=9 delivered, each 10ms apart.
        let total: u32 = sim.nodes().map(|nd| nd.hops_seen).sum();
        assert_eq!(total, 10);
        assert_eq!(sim.now().as_millis(), 100);
        // First delivery is to node 1 at t=10ms.
        assert_eq!(sim.node(1).deliveries[0].0.as_millis(), 10);
    }

    #[test]
    fn crash_stops_processing() {
        let n = 3;
        let mut faults = FaultPlan::none();
        faults.crash(2, SimTime::from_millis(15));
        let mut sim = Simulation::new(
            ring(n, 100),
            Box::new(UniformLatency::new(n, Duration::from_millis(10))),
        )
        .with_faults(faults);
        sim.run();
        // Token: 0 ->10ms-> 1 ->20ms-> 2 (crashed at 15ms, never delivers).
        assert_eq!(sim.node(1).hops_seen, 1);
        assert_eq!(sim.node(2).hops_seen, 0);
    }

    struct TimerNode {
        fired: Vec<(u64, SimTime)>,
        cancel_second: bool,
    }

    impl Node for TimerNode {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Context<()>) {
            ctx.set_timer(Duration::from_millis(5), 1);
            let t2 = ctx.set_timer(Duration::from_millis(10), 2);
            if self.cancel_second {
                ctx.cancel_timer(t2);
            }
        }

        fn on_message(&mut self, _ctx: &mut Context<()>, _from: NodeId, _msg: ()) {}

        fn on_timer(&mut self, ctx: &mut Context<()>, _timer: TimerId, tag: u64) {
            self.fired.push((tag, ctx.now));
        }
    }

    #[test]
    fn timers_fire_with_tags() {
        let mut sim = Simulation::new(
            vec![TimerNode {
                fired: vec![],
                cancel_second: false,
            }],
            Box::new(UniformLatency::new(1, Duration::ZERO)),
        );
        sim.run();
        assert_eq!(sim.node(0).fired.len(), 2);
        assert_eq!(sim.node(0).fired[0].0, 1);
        assert_eq!(sim.node(0).fired[0].1.as_millis(), 5);
        assert_eq!(sim.node(0).fired[1].0, 2);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut sim = Simulation::new(
            vec![TimerNode {
                fired: vec![],
                cancel_second: true,
            }],
            Box::new(UniformLatency::new(1, Duration::ZERO)),
        );
        sim.run();
        assert_eq!(sim.node(0).fired.len(), 1);
        assert_eq!(sim.node(0).fired[0].0, 1);
        assert_eq!(sim.timer_bookkeeping(), 0, "fired + cancelled both retired");
    }

    #[test]
    fn horizon_limits_run() {
        let n = 3;
        let mut sim = Simulation::new(
            ring(n, u32::MAX),
            Box::new(UniformLatency::new(n, Duration::from_millis(10))),
        )
        .with_config(SimulationConfig {
            horizon: SimTime::from_millis(55),
            max_events: u64::MAX,
        });
        sim.run();
        assert!(sim.now() <= SimTime::from_millis(55));
        let total: u32 = sim.nodes().map(|nd| nd.hops_seen).sum();
        assert_eq!(total, 5, "one hop per 10ms until the 55ms horizon");
    }

    /// Regression test for the horizon-drop bug: the seed engine *popped*
    /// the first over-horizon event before noticing it was late and silently
    /// dropped it, so extending the horizon lost one delivery forever.
    #[test]
    fn horizon_extension_keeps_over_horizon_event() {
        let n = 3;
        let mut sim = Simulation::new(
            ring(n, 5),
            Box::new(UniformLatency::new(n, Duration::from_millis(10))),
        )
        .with_config(SimulationConfig {
            horizon: SimTime::from_millis(15),
            max_events: u64::MAX,
        });
        sim.run();
        let mid: u32 = sim.nodes().map(|nd| nd.hops_seen).sum();
        assert_eq!(mid, 1, "only the 10ms hop fits under the 15ms horizon");
        assert_eq!(sim.now().as_millis(), 15);
        assert_eq!(sim.pending_events(), 1, "the 20ms hop must stay queued");

        // Extend the horizon mid-run and resume: the 20ms delivery — and the
        // whole chain behind it — must still happen.
        sim.set_horizon(SimTime::from_millis(100));
        while sim.step() {}
        let total: u32 = sim.nodes().map(|nd| nd.hops_seen).sum();
        assert_eq!(total, 6, "hops 0..=5 all delivered after the extension");
        assert_eq!(sim.now().as_millis(), 60);
    }

    /// The `max_events` safety valve must leave an audit trail: the flag is
    /// set when the budget truncates a run with work still queued, and
    /// `record_engine_metrics` surfaces it as `netsim.sim.max_events_hit`.
    #[test]
    fn max_events_budget_hit_is_recorded_not_silent() {
        let n = 3;
        let mut sim = Simulation::new(
            ring(n, u32::MAX),
            Box::new(UniformLatency::new(n, Duration::from_millis(10))),
        )
        .with_config(SimulationConfig {
            horizon: SimTime::from_secs(1_000_000),
            max_events: 10,
        });
        sim.run();
        assert_eq!(sim.events_processed(), 10);
        assert!(sim.max_events_hit(), "budget tripped with events pending");
        let t = telemetry::Telemetry::recording();
        sim.record_engine_metrics(&t);
        assert_eq!(
            t.registry_snapshot().counter("netsim.sim.max_events_hit", None),
            1
        );

        // A run that drains naturally must not raise the flag, even though
        // it also stops stepping.
        let mut clean = Simulation::new(
            ring(n, 5),
            Box::new(UniformLatency::new(n, Duration::from_millis(10))),
        );
        clean.run();
        assert!(!clean.max_events_hit());
        let t = telemetry::Telemetry::recording();
        clean.record_engine_metrics(&t);
        assert_eq!(
            t.registry_snapshot().counter("netsim.sim.max_events_hit", None),
            0
        );
    }

    #[test]
    fn run_until_pauses_and_resumes() {
        let n = 4;
        let mut sim = Simulation::new(
            ring(n, 7),
            Box::new(UniformLatency::new(n, Duration::from_millis(10))),
        );
        sim.run_until(SimTime::from_millis(35));
        let mid: u32 = sim.nodes().map(|nd| nd.hops_seen).sum();
        assert_eq!(mid, 3);
        sim.run_until(SimTime::from_secs(10));
        let total: u32 = sim.nodes().map(|nd| nd.hops_seen).sum();
        assert_eq!(total, 8);
    }

    /// Node 0 pings node 1 every 10 ms; node 1 is crashed between 25 ms and
    /// 55 ms, so pings landing in that window are lost and later ones resume.
    struct PingNode {
        received: Vec<SimTime>,
        horizon: SimTime,
    }

    impl Node for PingNode {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Context<()>) {
            if ctx.id == 0 {
                ctx.set_timer(Duration::from_millis(10), 0);
            }
        }

        fn on_message(&mut self, ctx: &mut Context<()>, _from: NodeId, _msg: ()) {
            self.received.push(ctx.now);
        }

        fn on_timer(&mut self, ctx: &mut Context<()>, _timer: TimerId, _tag: u64) {
            ctx.send(1, ());
            if ctx.now < self.horizon {
                ctx.set_timer(Duration::from_millis(10), 0);
            }
        }
    }

    #[test]
    fn crashed_node_recovers_and_resumes_processing() {
        let mk = || PingNode {
            received: Vec::new(),
            horizon: SimTime::from_millis(100),
        };
        let mut faults = FaultPlan::none();
        faults.crash_between(1, SimTime::from_millis(25), SimTime::from_millis(55));
        let mut sim = Simulation::new(
            vec![mk(), mk()],
            Box::new(UniformLatency::new(2, Duration::ZERO)),
        )
        .with_faults(faults);
        sim.run();
        let received: Vec<u64> = sim.node(1).received.iter().map(|t| t.as_millis()).collect();
        // Pings at 10..=100 every 10 ms; 30, 40, 50 fall into the crash window.
        assert_eq!(received, vec![10, 20, 60, 70, 80, 90, 100]);
    }

    #[test]
    fn determinism_same_seedless_run() {
        let n = 5;
        let mk = || {
            let mut sim = Simulation::new(
                ring(n, 20),
                Box::new(UniformLatency::new(n, Duration::from_millis(3))),
            );
            sim.run();
            sim.nodes()
                .flat_map(|nd| nd.deliveries.iter().map(|&(t, h)| (t.as_micros(), h)))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn wheel_and_heap_drive_identical_traces() {
        let n = 6;
        fn collect<S: EventScheduler<u32>>(sim: &Simulation<RingNode, S>) -> Vec<(u64, u32)> {
            sim.nodes()
                .flat_map(|nd| nd.deliveries.iter().map(|&(t, h)| (t.as_micros(), h)))
                .collect()
        }
        let trace = |heap: bool| {
            let latency = Box::new(UniformLatency::new(n, Duration::from_millis(7)));
            if heap {
                let mut sim =
                    Simulation::with_scheduler(ring(n, 30), latency, HeapScheduler::default());
                sim.run();
                collect(&sim)
            } else {
                let mut sim = Simulation::new(ring(n, 30), latency);
                sim.run();
                collect(&sim)
            }
        };
        assert_eq!(trace(false), trace(true));
    }

    /// Each round sets the next keeper timer plus a far-future decoy and
    /// immediately cancels the decoy: the seed engine retained every decoy id
    /// in `cancelled` (and every timer ever set in `timer_seq`) forever.
    struct ChurnNode {
        rounds: u32,
        fired: u32,
    }

    impl Node for ChurnNode {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Context<()>) {
            ctx.set_timer(Duration::from_millis(1), 0);
        }

        fn on_message(&mut self, _ctx: &mut Context<()>, _from: NodeId, _msg: ()) {}

        fn on_timer(&mut self, ctx: &mut Context<()>, _timer: TimerId, tag: u64) {
            assert_eq!(tag, 0, "cancelled decoy timers must never fire");
            self.fired += 1;
            if self.fired < self.rounds {
                ctx.set_timer(Duration::from_millis(1), 0);
                let decoy = ctx.set_timer(Duration::from_secs(3600), 1);
                ctx.cancel_timer(decoy);
            }
        }
    }

    #[test]
    fn timer_bookkeeping_stays_bounded_across_churn() {
        let mut sim = Simulation::new(
            vec![ChurnNode {
                rounds: 5_000,
                fired: 0,
            }],
            Box::new(UniformLatency::new(1, Duration::ZERO)),
        );
        sim.run();
        assert_eq!(sim.node(0).fired, 5_000);
        assert_eq!(
            sim.timer_bookkeeping(),
            0,
            "bookkeeping must not grow with total timers set"
        );
        assert_eq!(sim.pending_events(), 0);
    }

    /// A message that counts how many times it is deep-cloned.
    #[derive(Debug)]
    struct CountedMsg {
        clones: Arc<AtomicUsize>,
        v: u64,
    }

    impl Clone for CountedMsg {
        fn clone(&self) -> Self {
            self.clones.fetch_add(1, Ordering::SeqCst);
            CountedMsg {
                clones: self.clones.clone(),
                v: self.v,
            }
        }
    }

    struct BroadcastNode {
        received: Vec<u64>,
    }

    impl Node for BroadcastNode {
        type Msg = CountedMsg;

        fn on_start(&mut self, ctx: &mut Context<CountedMsg>) {
            if ctx.id == 0 {
                ctx.broadcast(CountedMsg {
                    clones: Arc::new(AtomicUsize::new(0)),
                    v: 42,
                });
            }
        }

        fn on_message(&mut self, _ctx: &mut Context<CountedMsg>, _from: NodeId, msg: CountedMsg) {
            self.received.push(msg.v);
        }

        fn on_timer(&mut self, _ctx: &mut Context<CountedMsg>, _timer: TimerId, _tag: u64) {}
    }

    #[test]
    fn broadcast_interns_payload_instead_of_cloning_per_recipient() {
        // All 4 recipients alive: the payload is cloned lazily at delivery,
        // and the last holder takes the original — n-2 clones total, versus
        // n-1 eager deep clones at schedule time in the seed engine.
        let n = 5;
        let mut sim = Simulation::new(
            (0..n).map(|_| BroadcastNode { received: vec![] }).collect(),
            Box::new(UniformLatency::new(n, Duration::from_millis(1))),
        );
        sim.run();
        let received: usize = sim.nodes().map(|nd| nd.received.len()).sum();
        assert_eq!(received, n - 1);
        assert!(sim.nodes().all(|nd| nd.received.iter().all(|&v| v == 42)));
    }

    #[test]
    fn broadcast_to_mostly_crashed_recipients_pays_zero_clones() {
        // Nodes 1..=3 crash before the broadcast lands; node 4 is the only
        // live recipient and is delivered last, so every shared reference is
        // already dropped and it unwraps the original without any clone.
        let n = 5;
        let clones = Arc::new(AtomicUsize::new(0));
        let probe = clones.clone();
        struct CrashedFanout {
            clones: Arc<AtomicUsize>,
            received: usize,
        }
        impl Node for CrashedFanout {
            type Msg = CountedMsg;
            fn on_start(&mut self, ctx: &mut Context<CountedMsg>) {
                if ctx.id == 0 {
                    ctx.broadcast(CountedMsg {
                        clones: self.clones.clone(),
                        v: 7,
                    });
                }
            }
            fn on_message(
                &mut self,
                _ctx: &mut Context<CountedMsg>,
                _from: NodeId,
                msg: CountedMsg,
            ) {
                assert_eq!(msg.v, 7);
                self.received += 1;
            }
            fn on_timer(&mut self, _ctx: &mut Context<CountedMsg>, _t: TimerId, _tag: u64) {}
        }
        let mut faults = FaultPlan::none();
        for node in 1..=3 {
            faults.crash(node, SimTime::from_micros(1));
        }
        let mut sim = Simulation::new(
            (0..n)
                .map(|_| CrashedFanout {
                    clones: clones.clone(),
                    received: 0,
                })
                .collect(),
            Box::new(UniformLatency::new(n, Duration::from_millis(1))),
        )
        .with_faults(faults);
        sim.run();
        assert_eq!(sim.node(4).received, 1);
        assert_eq!(
            probe.load(Ordering::SeqCst),
            0,
            "dropped deliveries must not deep-clone the payload"
        );
    }
}
