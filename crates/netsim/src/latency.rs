//! Per-link latency models.
//!
//! The simulator asks a [`LatencyModel`] for the one-way latency of every
//! message it delivers. The paper's evaluation injects latency from a
//! city-to-city round-trip dataset; [`GeoLatency`] reproduces that setup from
//! the synthetic [`crate::cities`] dataset, while [`MatrixLatency`] and
//! [`UniformLatency`] are useful for tests and microbenchmarks.
//!
//! Conventions: models return *one-way* latency. The paper reports round-trip
//! times (RTT); helpers that build models from RTT data halve the values.

use crate::cities::CityDataset;
use crate::sim::NodeId;
use crate::time::Duration;

/// One-way latency between two nodes.
pub trait LatencyModel: Send {
    /// One-way latency for a message from `from` to `to`.
    fn latency(&self, from: NodeId, to: NodeId) -> Duration;

    /// Number of nodes this model covers.
    fn len(&self) -> usize;

    /// True if the model covers no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Round-trip latency between two nodes (sum of both directions).
    fn rtt(&self, a: NodeId, b: NodeId) -> Duration {
        self.latency(a, b) + self.latency(b, a)
    }
}

/// All pairs share the same one-way latency (plus zero for self-messages).
#[derive(Debug, Clone)]
pub struct UniformLatency {
    nodes: usize,
    one_way: Duration,
}

impl UniformLatency {
    /// Create a uniform model for `nodes` nodes with the given one-way latency.
    pub fn new(nodes: usize, one_way: Duration) -> Self {
        UniformLatency { nodes, one_way }
    }
}

impl LatencyModel for UniformLatency {
    fn latency(&self, from: NodeId, to: NodeId) -> Duration {
        if from == to {
            Duration::ZERO
        } else {
            self.one_way
        }
    }

    fn len(&self) -> usize {
        self.nodes
    }
}

/// Explicit n×n one-way latency matrix.
#[derive(Debug, Clone)]
pub struct MatrixLatency {
    n: usize,
    /// Row-major one-way latencies, `matrix[from * n + to]`.
    matrix: Vec<Duration>,
}

impl MatrixLatency {
    /// Build from a row-major matrix of one-way latencies.
    ///
    /// # Panics
    /// Panics if `matrix.len() != n * n`.
    pub fn new(n: usize, matrix: Vec<Duration>) -> Self {
        assert_eq!(matrix.len(), n * n, "latency matrix must be n*n");
        MatrixLatency { n, matrix }
    }

    /// Build a symmetric model from per-pair round-trip times in milliseconds.
    /// The one-way latency is rtt/2; the diagonal is zero.
    pub fn from_rtt_millis(n: usize, rtt_ms: &[f64]) -> Self {
        assert_eq!(rtt_ms.len(), n * n, "rtt matrix must be n*n");
        let mut matrix = vec![Duration::ZERO; n * n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    matrix[a * n + b] = Duration::from_millis_f64(rtt_ms[a * n + b] / 2.0);
                }
            }
        }
        MatrixLatency { n, matrix }
    }

    /// Overwrite the one-way latency of a single directed link.
    pub fn set(&mut self, from: NodeId, to: NodeId, one_way: Duration) {
        self.matrix[from * self.n + to] = one_way;
    }

    /// One-way latency in milliseconds as a float (for scoring code).
    pub fn millis(&self, from: NodeId, to: NodeId) -> f64 {
        self.latency(from, to).as_millis_f64()
    }
}

impl LatencyModel for MatrixLatency {
    fn latency(&self, from: NodeId, to: NodeId) -> Duration {
        if from == to {
            Duration::ZERO
        } else {
            self.matrix[from * self.n + to]
        }
    }

    fn len(&self) -> usize {
        self.n
    }
}

/// Latency derived from a geographic city dataset: each node is assigned a
/// city, and the one-way latency of a link is half of the RTT between the two
/// cities plus a fixed base delay (the paper adds 1 ms of real network delay).
#[derive(Debug, Clone)]
pub struct GeoLatency {
    /// City index assigned to each node.
    assignment: Vec<usize>,
    /// Pairwise city RTTs in milliseconds.
    rtt_ms: Vec<f64>,
    cities: usize,
    base: Duration,
}

impl GeoLatency {
    /// Build from a dataset and a node→city assignment.
    ///
    /// # Panics
    /// Panics if an assignment index is out of range for the dataset.
    pub fn new(dataset: &CityDataset, assignment: Vec<usize>, base: Duration) -> Self {
        let cities = dataset.len();
        for &c in &assignment {
            assert!(c < cities, "city index {c} out of range ({cities} cities)");
        }
        GeoLatency {
            assignment,
            rtt_ms: dataset.rtt_matrix_ms(),
            cities,
            base,
        }
    }

    /// City index for a node.
    pub fn city_of(&self, node: NodeId) -> usize {
        self.assignment[node]
    }

    /// RTT in milliseconds between the cities of two nodes (excluding base delay).
    pub fn city_rtt_ms(&self, a: NodeId, b: NodeId) -> f64 {
        let (ca, cb) = (self.assignment[a], self.assignment[b]);
        self.rtt_ms[ca * self.cities + cb]
    }
}

impl LatencyModel for GeoLatency {
    fn latency(&self, from: NodeId, to: NodeId) -> Duration {
        if from == to {
            return Duration::ZERO;
        }
        let rtt = self.city_rtt_ms(from, to);
        Duration::from_millis_f64(rtt / 2.0) + self.base
    }

    fn len(&self) -> usize {
        self.assignment.len()
    }
}

/// Extract the full one-way latency matrix (in milliseconds) from any model.
/// Protocol-side scoring code (Aware, OptiTree) works on this snapshot.
pub fn snapshot_millis(model: &dyn LatencyModel) -> Vec<f64> {
    let n = model.len();
    let mut out = vec![0.0; n * n];
    for a in 0..n {
        for b in 0..n {
            out[a * n + b] = model.latency(a, b).as_millis_f64();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::{CityDataset, Region};

    #[test]
    fn uniform_latency() {
        let m = UniformLatency::new(4, Duration::from_millis(10));
        assert_eq!(m.latency(0, 1).as_millis(), 10);
        assert_eq!(m.latency(2, 2).as_millis(), 0);
        assert_eq!(m.rtt(0, 3).as_millis(), 20);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn matrix_latency_from_rtt() {
        let rtt = vec![0.0, 100.0, 100.0, 0.0];
        let m = MatrixLatency::from_rtt_millis(2, &rtt);
        assert_eq!(m.latency(0, 1).as_millis(), 50);
        assert_eq!(m.latency(0, 0).as_millis(), 0);
        assert_eq!(m.rtt(0, 1).as_millis(), 100);
    }

    #[test]
    fn matrix_set_overrides_link() {
        let mut m = MatrixLatency::new(2, vec![Duration::ZERO; 4]);
        m.set(0, 1, Duration::from_millis(42));
        assert_eq!(m.latency(0, 1).as_millis(), 42);
        assert_eq!(m.latency(1, 0).as_millis(), 0, "directed override");
    }

    #[test]
    #[should_panic(expected = "n*n")]
    fn matrix_wrong_size_panics() {
        MatrixLatency::new(3, vec![Duration::ZERO; 4]);
    }

    #[test]
    fn geo_latency_uses_city_assignment() {
        let ds = CityDataset::worldwide();
        let europe = ds.region_indices(Region::Europe);
        let asia = ds.region_indices(Region::Asia);
        let assignment = vec![europe[0], europe[1], asia[0]];
        let geo = GeoLatency::new(&ds, assignment, Duration::from_millis(1));
        // Intra-Europe should be clearly faster than Europe-Asia.
        assert!(geo.latency(0, 1) < geo.latency(0, 2));
        assert_eq!(geo.latency(1, 1), Duration::ZERO);
        assert_eq!(geo.len(), 3);
    }

    #[test]
    fn snapshot_matches_model() {
        let m = UniformLatency::new(3, Duration::from_millis(7));
        let snap = snapshot_millis(&m);
        assert_eq!(snap.len(), 9);
        assert_eq!(snap[1], 7.0); // row 0, col 1
        assert_eq!(snap[2 * 3 + 2], 0.0);
    }
}
