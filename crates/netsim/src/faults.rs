//! Network-level fault injection.
//!
//! The paper's adversary can delay its *own* messages (performance attacks),
//! crash, or drop messages, but cannot delay traffic between correct
//! replicas. [`FaultPlan`] captures exactly that: per-node and per-link
//! modifications that the simulator applies when scheduling deliveries from a
//! faulty sender. Protocol-level Byzantine behaviour (equivocation, lying
//! about measurements) is implemented inside the protocol crates; this module
//! only covers timing and omission faults visible at the network layer.
//!
//! Faults are *phased*: every fault carries a [`FaultWindow`] and is applied
//! only while the window contains the current virtual time. A scenario like
//! "clean warmup → δ-inflation between 30 s and 60 s → crash at 80 s →
//! recovery at 100 s" is a plan of three windowed faults, which is how the
//! `lab` crate compiles adversary scripts down to the network layer.

use crate::sim::NodeId;
use crate::time::{Duration, SimTime};
use std::collections::HashMap;

// The fault *window* is pure data shared with protocol-level delay stages,
// so it lives in the runtime-agnostic `runtime` crate; re-exported here to
// keep `netsim::faults::FaultWindow` / `netsim::FaultWindow` paths working.
pub use runtime::FaultWindow;

/// A fault applied to every message sent by a node while its window is open.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeFault {
    /// The node crashes at the given time: it stops sending and processing.
    /// Pair with [`FaultPlan::recover`] to bring it back.
    CrashAt(SimTime),
    /// All outgoing messages are delayed by an additional fixed duration.
    OutgoingDelay(Duration),
    /// All outgoing messages have their link latency multiplied by a factor
    /// (the paper's δ-inflation attack, §7.6).
    OutgoingInflation(f64),
    /// All outgoing messages are dropped while the fault is active.
    Silent,
    /// All outgoing messages are dropped after the given time.
    SilentAfter(SimTime),
}

/// A fault applied to a single directed link while its window is open.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFault {
    /// Extra delay added to messages on this link.
    Delay(Duration),
    /// Latency multiplied by a factor on this link.
    Inflation(f64),
    /// Messages on this link are dropped.
    Drop,
}

/// A collection of node and link faults applied by the simulator.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    node_faults: HashMap<NodeId, Vec<(NodeFault, FaultWindow)>>,
    link_faults: HashMap<(NodeId, NodeId), Vec<(LinkFault, FaultWindow)>>,
    recoveries: Vec<(NodeId, SimTime)>,
}

impl FaultPlan {
    /// An empty plan: every node behaves correctly at the network level.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Add a node-level fault active for the whole run.
    pub fn add_node_fault(&mut self, node: NodeId, fault: NodeFault) -> &mut Self {
        self.add_node_fault_during(node, fault, FaultWindow::ALWAYS)
    }

    /// Add a node-level fault active only while `window` is open.
    ///
    /// `CrashAt` carries its own time and ignores windows — use
    /// [`FaultPlan::crash`] / [`FaultPlan::crash_between`] instead, which
    /// this asserts.
    pub fn add_node_fault_during(
        &mut self,
        node: NodeId,
        fault: NodeFault,
        window: FaultWindow,
    ) -> &mut Self {
        assert!(
            window == FaultWindow::ALWAYS || !matches!(fault, NodeFault::CrashAt(_)),
            "CrashAt ignores fault windows; use crash()/crash_between() for bounded crashes"
        );
        self.node_faults.entry(node).or_default().push((fault, window));
        self
    }

    /// Add a directed link-level fault active for the whole run.
    pub fn add_link_fault(&mut self, from: NodeId, to: NodeId, fault: LinkFault) -> &mut Self {
        self.add_link_fault_during(from, to, fault, FaultWindow::ALWAYS)
    }

    /// Add a directed link-level fault active only while `window` is open.
    pub fn add_link_fault_during(
        &mut self,
        from: NodeId,
        to: NodeId,
        fault: LinkFault,
        window: FaultWindow,
    ) -> &mut Self {
        self.link_faults
            .entry((from, to))
            .or_default()
            .push((fault, window));
        self
    }

    /// Convenience: crash `node` at `at` (permanently, unless it recovers).
    pub fn crash(&mut self, node: NodeId, at: SimTime) -> &mut Self {
        self.add_node_fault(node, NodeFault::CrashAt(at))
    }

    /// Convenience: bring a crashed `node` back at `at`. It resumes
    /// processing deliveries and timers scheduled after the recovery.
    pub fn recover(&mut self, node: NodeId, at: SimTime) -> &mut Self {
        self.recoveries.push((node, at));
        self
    }

    /// Convenience: crash `node` at `at` and recover it at `until`.
    pub fn crash_between(&mut self, node: NodeId, at: SimTime, until: SimTime) -> &mut Self {
        assert!(at <= until, "recovery precedes crash");
        self.crash(node, at);
        self.recover(node, until)
    }

    /// Convenience: inflate all outgoing latency of `node` by `factor`.
    pub fn inflate_outgoing(&mut self, node: NodeId, factor: f64) -> &mut Self {
        self.add_node_fault(node, NodeFault::OutgoingInflation(factor))
    }

    /// Nodes with a scheduled crash, with their crash times.
    pub fn crash_schedule(&self) -> Vec<(NodeId, SimTime)> {
        let mut v: Vec<(NodeId, SimTime)> = self
            .node_faults
            .iter()
            .flat_map(|(&n, faults)| {
                faults.iter().filter_map(move |(f, _)| match f {
                    NodeFault::CrashAt(t) => Some((n, *t)),
                    _ => None,
                })
            })
            .collect();
        v.sort_by_key(|&(n, t)| (t, n));
        v
    }

    /// Nodes with a scheduled recovery, with their recovery times.
    pub fn recovery_schedule(&self) -> Vec<(NodeId, SimTime)> {
        let mut v = self.recoveries.clone();
        v.sort_by_key(|&(n, t)| (t, n));
        v
    }

    /// True if `node` has crashed (per its crash/recovery schedule) at `now`.
    pub fn is_crashed(&self, node: NodeId, now: SimTime) -> bool {
        // The most recent crash-or-recovery event at or before `now` decides.
        let last_crash = self
            .node_faults
            .get(&node)
            .into_iter()
            .flatten()
            .filter_map(|(f, _)| match f {
                NodeFault::CrashAt(t) if *t <= now => Some(*t),
                _ => None,
            })
            .max();
        let Some(crash) = last_crash else {
            return false;
        };
        let last_recovery = self
            .recoveries
            .iter()
            .filter(|&&(n, t)| n == node && t <= now)
            .map(|&(_, t)| t)
            .max();
        // A recovery at the same instant as the crash wins (crash_between
        // with an empty window is a no-op).
        last_recovery.is_none_or(|r| r < crash)
    }

    /// Compute the effective delivery delay of a message sent at `now` from
    /// `from` to `to` whose nominal link latency is `base`. Returns `None` if
    /// the message is dropped.
    pub fn effective_delay(
        &self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        base: Duration,
    ) -> Option<Duration> {
        if self.is_crashed(from, now) {
            return None;
        }
        let mut delay = base;
        if let Some(faults) = self.node_faults.get(&from) {
            for (f, w) in faults {
                if !w.contains(now) {
                    continue;
                }
                match f {
                    NodeFault::CrashAt(_) => {} // handled by is_crashed above
                    NodeFault::Silent => return None,
                    NodeFault::SilentAfter(t) if now >= *t => return None,
                    NodeFault::SilentAfter(_) => {}
                    NodeFault::OutgoingDelay(d) => delay += *d,
                    NodeFault::OutgoingInflation(factor) => delay = delay.mul_f64(*factor),
                }
            }
        }
        if let Some(faults) = self.link_faults.get(&(from, to)) {
            for (f, w) in faults {
                if !w.contains(now) {
                    continue;
                }
                match f {
                    LinkFault::Drop => return None,
                    LinkFault::Delay(d) => delay += *d,
                    LinkFault::Inflation(factor) => delay = delay.mul_f64(*factor),
                }
            }
        }
        Some(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_passes_messages_through() {
        let plan = FaultPlan::none();
        let d = plan.effective_delay(SimTime::ZERO, 0, 1, Duration::from_millis(10));
        assert_eq!(d, Some(Duration::from_millis(10)));
        assert!(!plan.is_crashed(0, SimTime::from_secs(100)));
    }

    #[test]
    fn crash_drops_messages_after_crash_time() {
        let mut plan = FaultPlan::none();
        plan.crash(2, SimTime::from_secs(10));
        let before = plan.effective_delay(SimTime::from_secs(9), 2, 0, Duration::from_millis(5));
        let after = plan.effective_delay(SimTime::from_secs(10), 2, 0, Duration::from_millis(5));
        assert!(before.is_some());
        assert!(after.is_none());
        assert!(plan.is_crashed(2, SimTime::from_secs(11)));
        assert!(!plan.is_crashed(2, SimTime::from_secs(9)));
    }

    #[test]
    fn outgoing_inflation_multiplies_latency() {
        let mut plan = FaultPlan::none();
        plan.inflate_outgoing(1, 1.4);
        let d = plan
            .effective_delay(SimTime::ZERO, 1, 0, Duration::from_millis(100))
            .unwrap();
        assert_eq!(d.as_millis(), 140);
        // Other senders are unaffected.
        let d2 = plan
            .effective_delay(SimTime::ZERO, 0, 1, Duration::from_millis(100))
            .unwrap();
        assert_eq!(d2.as_millis(), 100);
    }

    #[test]
    fn outgoing_delay_adds_latency() {
        let mut plan = FaultPlan::none();
        plan.add_node_fault(3, NodeFault::OutgoingDelay(Duration::from_millis(500)));
        let d = plan
            .effective_delay(SimTime::ZERO, 3, 1, Duration::from_millis(50))
            .unwrap();
        assert_eq!(d.as_millis(), 550);
    }

    #[test]
    fn link_faults_apply_to_single_direction() {
        let mut plan = FaultPlan::none();
        plan.add_link_fault(0, 1, LinkFault::Drop);
        plan.add_link_fault(1, 2, LinkFault::Delay(Duration::from_millis(20)));
        assert!(plan
            .effective_delay(SimTime::ZERO, 0, 1, Duration::from_millis(1))
            .is_none());
        assert!(plan
            .effective_delay(SimTime::ZERO, 1, 0, Duration::from_millis(1))
            .is_some());
        assert_eq!(
            plan.effective_delay(SimTime::ZERO, 1, 2, Duration::from_millis(10))
                .unwrap()
                .as_millis(),
            30
        );
    }

    #[test]
    fn crash_schedule_sorted_by_time() {
        let mut plan = FaultPlan::none();
        plan.crash(5, SimTime::from_secs(30));
        plan.crash(1, SimTime::from_secs(10));
        plan.crash(3, SimTime::from_secs(20));
        let sched = plan.crash_schedule();
        assert_eq!(
            sched,
            vec![
                (1, SimTime::from_secs(10)),
                (3, SimTime::from_secs(20)),
                (5, SimTime::from_secs(30))
            ]
        );
    }

    #[test]
    fn silent_after_drops_only_after_threshold() {
        let mut plan = FaultPlan::none();
        plan.add_node_fault(0, NodeFault::SilentAfter(SimTime::from_secs(5)));
        assert!(plan
            .effective_delay(SimTime::from_secs(4), 0, 1, Duration::from_millis(1))
            .is_some());
        assert!(plan
            .effective_delay(SimTime::from_secs(5), 0, 1, Duration::from_millis(1))
            .is_none());
    }

    // ---- phased-fault edges ----
    // (FaultWindow's own half-open-interval semantics are tested where it
    // now lives, in runtime::time.)

    /// A stage that starts and ends *between* two deliveries must touch
    /// neither: the fault applies by send time, not by overlap.
    #[test]
    fn stage_between_two_deliveries_affects_neither() {
        let mut plan = FaultPlan::none();
        plan.add_node_fault_during(
            0,
            NodeFault::OutgoingInflation(10.0),
            FaultWindow::between(SimTime::from_millis(100), SimTime::from_millis(200)),
        );
        // Sent just before the stage opens: unaffected.
        let before = plan
            .effective_delay(SimTime::from_millis(99), 0, 1, Duration::from_millis(50))
            .unwrap();
        assert_eq!(before.as_millis(), 50);
        // Sent at the stage end: unaffected (half-open window).
        let after = plan
            .effective_delay(SimTime::from_millis(200), 0, 1, Duration::from_millis(50))
            .unwrap();
        assert_eq!(after.as_millis(), 50);
        // Sent inside the stage: inflated — even though it is *delivered*
        // after the stage closed.
        let inside = plan
            .effective_delay(SimTime::from_millis(150), 0, 1, Duration::from_millis(50))
            .unwrap();
        assert_eq!(inside.as_millis(), 500);
    }

    /// Overlapping node and link stages compose: both modifications apply
    /// while both windows are open, and each alone outside the overlap.
    #[test]
    fn overlapping_node_and_link_stages_compose() {
        let mut plan = FaultPlan::none();
        plan.add_node_fault_during(
            0,
            NodeFault::OutgoingDelay(Duration::from_millis(100)),
            FaultWindow::between(SimTime::from_secs(10), SimTime::from_secs(30)),
        );
        plan.add_link_fault_during(
            0,
            1,
            LinkFault::Inflation(2.0),
            FaultWindow::between(SimTime::from_secs(20), SimTime::from_secs(40)),
        );
        let base = Duration::from_millis(10);
        // Only the node stage: base + 100.
        let d = plan.effective_delay(SimTime::from_secs(15), 0, 1, base).unwrap();
        assert_eq!(d.as_millis(), 110);
        // Overlap: (base + 100) * 2 — node faults apply before link faults.
        let d = plan.effective_delay(SimTime::from_secs(25), 0, 1, base).unwrap();
        assert_eq!(d.as_millis(), 220);
        // Only the link stage: base * 2.
        let d = plan.effective_delay(SimTime::from_secs(35), 0, 1, base).unwrap();
        assert_eq!(d.as_millis(), 20);
        // Outside both: base.
        let d = plan.effective_delay(SimTime::from_secs(45), 0, 1, base).unwrap();
        assert_eq!(d.as_millis(), 10);
        // The link stage is directional: 0 → 2 sees only the node stage.
        let d = plan.effective_delay(SimTime::from_secs(25), 0, 2, base).unwrap();
        assert_eq!(d.as_millis(), 110);
    }

    /// A crash in the middle of an open attack stage silences the node even
    /// though the attack window is still open, and recovery restores the
    /// attack (not clean behaviour) while the window remains open.
    #[test]
    fn crash_during_attack_takes_precedence_until_recovery() {
        let mut plan = FaultPlan::none();
        plan.add_node_fault_during(
            1,
            NodeFault::OutgoingInflation(3.0),
            FaultWindow::between(SimTime::from_secs(10), SimTime::from_secs(100)),
        );
        plan.crash_between(1, SimTime::from_secs(40), SimTime::from_secs(60));
        let base = Duration::from_millis(10);
        // Attack active before the crash.
        assert_eq!(
            plan.effective_delay(SimTime::from_secs(20), 1, 0, base).unwrap().as_millis(),
            30
        );
        // Crashed: nothing gets out, attack or not.
        assert!(plan.is_crashed(1, SimTime::from_secs(50)));
        assert!(plan.effective_delay(SimTime::from_secs(50), 1, 0, base).is_none());
        // Recovered mid-window: the attack stage applies again.
        assert!(!plan.is_crashed(1, SimTime::from_secs(60)));
        assert_eq!(
            plan.effective_delay(SimTime::from_secs(70), 1, 0, base).unwrap().as_millis(),
            30
        );
        // Attack window closed: clean.
        assert_eq!(
            plan.effective_delay(SimTime::from_secs(150), 1, 0, base).unwrap().as_millis(),
            10
        );
    }

    #[test]
    fn recovery_schedule_sorted_and_roundtrip() {
        let mut plan = FaultPlan::none();
        plan.crash_between(4, SimTime::from_secs(10), SimTime::from_secs(50));
        plan.crash_between(2, SimTime::from_secs(5), SimTime::from_secs(20));
        assert_eq!(
            plan.recovery_schedule(),
            vec![(2, SimTime::from_secs(20)), (4, SimTime::from_secs(50))]
        );
        // A second crash after recovery crashes the node again.
        plan.crash(2, SimTime::from_secs(30));
        assert!(!plan.is_crashed(2, SimTime::from_secs(25)));
        assert!(plan.is_crashed(2, SimTime::from_secs(31)));
    }

    #[test]
    fn windowed_silence_drops_only_inside_window() {
        let mut plan = FaultPlan::none();
        plan.add_node_fault_during(
            0,
            NodeFault::Silent,
            FaultWindow::between(SimTime::from_secs(2), SimTime::from_secs(4)),
        );
        let base = Duration::from_millis(1);
        assert!(plan.effective_delay(SimTime::from_secs(1), 0, 1, base).is_some());
        assert!(plan.effective_delay(SimTime::from_secs(3), 0, 1, base).is_none());
        assert!(plan.effective_delay(SimTime::from_secs(4), 0, 1, base).is_some());
    }
}
