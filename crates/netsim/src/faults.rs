//! Network-level fault injection.
//!
//! The paper's adversary can delay its *own* messages (performance attacks),
//! crash, or drop messages, but cannot delay traffic between correct
//! replicas. [`FaultPlan`] captures exactly that: per-node and per-link
//! modifications that the simulator applies when scheduling deliveries from a
//! faulty sender. Protocol-level Byzantine behaviour (equivocation, lying
//! about measurements) is implemented inside the protocol crates; this module
//! only covers timing and omission faults visible at the network layer.

use crate::sim::NodeId;
use crate::time::{Duration, SimTime};
use std::collections::HashMap;

/// A fault applied to every message sent by a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeFault {
    /// The node crashes at the given time: it stops sending and processing.
    CrashAt(SimTime),
    /// All outgoing messages are delayed by an additional fixed duration.
    OutgoingDelay(Duration),
    /// All outgoing messages have their link latency multiplied by a factor
    /// (the paper's δ-inflation attack, §7.6).
    OutgoingInflation(f64),
    /// All outgoing messages are dropped after the given time.
    SilentAfter(SimTime),
}

/// A fault applied to a single directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFault {
    /// Extra delay added to messages on this link.
    Delay(Duration),
    /// Latency multiplied by a factor on this link.
    Inflation(f64),
    /// Messages on this link are dropped.
    Drop,
}

/// A collection of node and link faults applied by the simulator.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    node_faults: HashMap<NodeId, Vec<NodeFault>>,
    link_faults: HashMap<(NodeId, NodeId), Vec<LinkFault>>,
}

impl FaultPlan {
    /// An empty plan: every node behaves correctly at the network level.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Add a node-level fault.
    pub fn add_node_fault(&mut self, node: NodeId, fault: NodeFault) -> &mut Self {
        self.node_faults.entry(node).or_default().push(fault);
        self
    }

    /// Add a directed link-level fault.
    pub fn add_link_fault(&mut self, from: NodeId, to: NodeId, fault: LinkFault) -> &mut Self {
        self.link_faults.entry((from, to)).or_default().push(fault);
        self
    }

    /// Convenience: crash `node` at `at`.
    pub fn crash(&mut self, node: NodeId, at: SimTime) -> &mut Self {
        self.add_node_fault(node, NodeFault::CrashAt(at))
    }

    /// Convenience: inflate all outgoing latency of `node` by `factor`.
    pub fn inflate_outgoing(&mut self, node: NodeId, factor: f64) -> &mut Self {
        self.add_node_fault(node, NodeFault::OutgoingInflation(factor))
    }

    /// Nodes with a scheduled crash, with their crash times.
    pub fn crash_schedule(&self) -> Vec<(NodeId, SimTime)> {
        let mut v: Vec<(NodeId, SimTime)> = self
            .node_faults
            .iter()
            .flat_map(|(&n, faults)| {
                faults.iter().filter_map(move |f| match f {
                    NodeFault::CrashAt(t) => Some((n, *t)),
                    _ => None,
                })
            })
            .collect();
        v.sort_by_key(|&(n, t)| (t, n));
        v
    }

    /// Compute the effective delivery delay of a message sent at `now` from
    /// `from` to `to` whose nominal link latency is `base`. Returns `None` if
    /// the message is dropped.
    pub fn effective_delay(
        &self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        base: Duration,
    ) -> Option<Duration> {
        let mut delay = base;
        if let Some(faults) = self.node_faults.get(&from) {
            for f in faults {
                match f {
                    NodeFault::CrashAt(t) if now >= *t => return None,
                    NodeFault::SilentAfter(t) if now >= *t => return None,
                    NodeFault::OutgoingDelay(d) => delay += *d,
                    NodeFault::OutgoingInflation(factor) => delay = delay.mul_f64(*factor),
                    _ => {}
                }
            }
        }
        if let Some(faults) = self.link_faults.get(&(from, to)) {
            for f in faults {
                match f {
                    LinkFault::Drop => return None,
                    LinkFault::Delay(d) => delay += *d,
                    LinkFault::Inflation(factor) => delay = delay.mul_f64(*factor),
                }
            }
        }
        Some(delay)
    }

    /// True if `node` has crashed (per its crash schedule) at time `now`.
    pub fn is_crashed(&self, node: NodeId, now: SimTime) -> bool {
        self.node_faults
            .get(&node)
            .map(|faults| {
                faults
                    .iter()
                    .any(|f| matches!(f, NodeFault::CrashAt(t) if now >= *t))
            })
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_passes_messages_through() {
        let plan = FaultPlan::none();
        let d = plan.effective_delay(SimTime::ZERO, 0, 1, Duration::from_millis(10));
        assert_eq!(d, Some(Duration::from_millis(10)));
        assert!(!plan.is_crashed(0, SimTime::from_secs(100)));
    }

    #[test]
    fn crash_drops_messages_after_crash_time() {
        let mut plan = FaultPlan::none();
        plan.crash(2, SimTime::from_secs(10));
        let before = plan.effective_delay(SimTime::from_secs(9), 2, 0, Duration::from_millis(5));
        let after = plan.effective_delay(SimTime::from_secs(10), 2, 0, Duration::from_millis(5));
        assert!(before.is_some());
        assert!(after.is_none());
        assert!(plan.is_crashed(2, SimTime::from_secs(11)));
        assert!(!plan.is_crashed(2, SimTime::from_secs(9)));
    }

    #[test]
    fn outgoing_inflation_multiplies_latency() {
        let mut plan = FaultPlan::none();
        plan.inflate_outgoing(1, 1.4);
        let d = plan
            .effective_delay(SimTime::ZERO, 1, 0, Duration::from_millis(100))
            .unwrap();
        assert_eq!(d.as_millis(), 140);
        // Other senders are unaffected.
        let d2 = plan
            .effective_delay(SimTime::ZERO, 0, 1, Duration::from_millis(100))
            .unwrap();
        assert_eq!(d2.as_millis(), 100);
    }

    #[test]
    fn outgoing_delay_adds_latency() {
        let mut plan = FaultPlan::none();
        plan.add_node_fault(3, NodeFault::OutgoingDelay(Duration::from_millis(500)));
        let d = plan
            .effective_delay(SimTime::ZERO, 3, 1, Duration::from_millis(50))
            .unwrap();
        assert_eq!(d.as_millis(), 550);
    }

    #[test]
    fn link_faults_apply_to_single_direction() {
        let mut plan = FaultPlan::none();
        plan.add_link_fault(0, 1, LinkFault::Drop);
        plan.add_link_fault(1, 2, LinkFault::Delay(Duration::from_millis(20)));
        assert!(plan
            .effective_delay(SimTime::ZERO, 0, 1, Duration::from_millis(1))
            .is_none());
        assert!(plan
            .effective_delay(SimTime::ZERO, 1, 0, Duration::from_millis(1))
            .is_some());
        assert_eq!(
            plan.effective_delay(SimTime::ZERO, 1, 2, Duration::from_millis(10))
                .unwrap()
                .as_millis(),
            30
        );
    }

    #[test]
    fn crash_schedule_sorted_by_time() {
        let mut plan = FaultPlan::none();
        plan.crash(5, SimTime::from_secs(30));
        plan.crash(1, SimTime::from_secs(10));
        plan.crash(3, SimTime::from_secs(20));
        let sched = plan.crash_schedule();
        assert_eq!(
            sched,
            vec![
                (1, SimTime::from_secs(10)),
                (3, SimTime::from_secs(20)),
                (5, SimTime::from_secs(30))
            ]
        );
    }

    #[test]
    fn silent_after_drops_only_after_threshold() {
        let mut plan = FaultPlan::none();
        plan.add_node_fault(0, NodeFault::SilentAfter(SimTime::from_secs(5)));
        assert!(plan
            .effective_delay(SimTime::from_secs(4), 0, 1, Duration::from_millis(1))
            .is_some());
        assert!(plan
            .effective_delay(SimTime::from_secs(5), 0, 1, Duration::from_millis(1))
            .is_none());
    }
}
