//! Events and payload interning for the discrete-event simulator.
//!
//! Events are ordered by `(time, sequence)`. The sequence number is a
//! monotonically increasing tie-breaker so that two events scheduled for the
//! same instant are delivered in the order they were scheduled, which keeps
//! the simulation deterministic across runs. Both schedulers (the production
//! [`crate::sched::TimerWheel`] and the reference [`EventQueue`] binary heap)
//! implement exactly this total order.
//!
//! Broadcast payloads are *interned*: one [`Payload::Shared`] `Arc` is
//! created per send and every per-recipient event holds a reference to it,
//! so a 100-replica broadcast costs one allocation instead of 100 deep
//! clones. The payload is unwrapped lazily at delivery — the last recipient
//! takes the original value back out of the `Arc`, and deliveries dropped on
//! the floor (crashed nodes, horizon cutoff) never pay the clone at all.

use crate::sim::{NodeId, TimerId};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

// Payload interning is part of the runtime-agnostic node API (the `Context`
// buffers `Payload`-carrying actions), so the type lives in `runtime`;
// re-exported here to keep `netsim::event::Payload` / `netsim::Payload`
// paths working.
pub use runtime::Payload;

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventKind<M> {
    /// Deliver the payload from `from` to the target node.
    Deliver {
        /// Sending node.
        from: NodeId,
        /// The (possibly broadcast-shared) message.
        payload: Payload<M>,
    },
    /// Fire timer `timer` (with an opaque `tag` chosen by the node) at the target node.
    Timer {
        /// Engine-assigned timer identity.
        timer: TimerId,
        /// Opaque tag echoed back to the node.
        tag: u64,
    },
    /// Crash the target node: it stops processing all further events.
    Crash,
    /// Recover a previously crashed node.
    Recover,
}

/// A scheduled event.
#[derive(Debug, Clone)]
pub struct Event<M> {
    /// Virtual time at which the event fires.
    pub at: SimTime,
    /// Tie-breaking sequence number (scheduling order).
    pub seq: u64,
    /// Node the event is delivered to.
    pub target: NodeId,
    /// Payload.
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The reference priority queue of simulation events: a binary heap ordered
/// by `(time, seq)`.
///
/// This is the original engine data structure, kept as the executable
/// specification of the determinism contract — the proptests drive it and
/// the [`crate::sched::TimerWheel`] with identical schedules and assert
/// identical pop order — and as the baseline the engine benchmarks compare
/// against ([`crate::sched::HeapScheduler`] wraps the same heap discipline).
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule an event; returns its sequence number.
    pub fn schedule(&mut self, at: SimTime, target: NodeId, kind: EventKind<M>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            at,
            seq,
            target,
            kind,
        });
        seq
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    /// Peek at the earliest event, if any.
    pub fn peek(&self) -> Option<&Event<M>> {
        self.heap.peek()
    }

    /// Peek at the time of the earliest event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn timer(at: u64) -> (SimTime, EventKind<()>) {
        (SimTime::from_micros(at), EventKind::Timer { timer: TimerId(0), tag: 0 })
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let (t3, k3) = timer(30);
        let (t1, k1) = timer(10);
        let (t2, k2) = timer(20);
        q.schedule(t3, 0, k3);
        q.schedule(t1, 1, k1);
        q.schedule(t2, 2, k2);
        assert_eq!(q.pop().unwrap().at.as_micros(), 10);
        assert_eq!(q.pop().unwrap().at.as_micros(), 20);
        assert_eq!(q.pop().unwrap().at.as_micros(), 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_broken_by_schedule_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        for target in 0..5 {
            q.schedule(SimTime::from_micros(100), target, EventKind::Crash);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.target).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn next_time_peeks_earliest() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.next_time().is_none());
        q.schedule(SimTime::from_micros(50), 0, EventKind::Crash);
        q.schedule(SimTime::from_micros(5), 0, EventKind::Crash);
        assert_eq!(q.next_time().unwrap().as_micros(), 5);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
    // (Payload's unwrap-without-clone semantics are tested where it now
    // lives, in runtime::node.)
}
