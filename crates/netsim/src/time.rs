//! Virtual time — re-exported from the runtime-agnostic `runtime` crate.
//!
//! [`SimTime`] and [`Duration`] moved to `runtime::time` when the node API
//! was hoisted out of the simulator; this shim keeps every historical
//! `netsim::time::*` / `netsim::{SimTime, Duration}` path compiling.

pub use runtime::time::{Duration, SimTime};
