//! Measurement collection — re-exported from the runtime-agnostic `runtime`
//! crate, which owns [`Histogram`], [`RateCounter`], and [`TimeSeries`] so
//! both the simulated and the real-clock harnesses can record with them.

pub use runtime::stats::{Histogram, RateCounter, TimeSeries};
