//! Synthetic geographic dataset standing in for the WonderProxy city RTTs.
//!
//! The paper's network emulator uses 220 worldwide locations with
//! intercontinental round-trip delays between 150 and 250 ms (plus 1 ms of
//! real network delay). The dataset itself is proprietary, so this module
//! generates a *synthetic* but realistic stand-in: 220 cities are placed in
//! continental clusters around anchor coordinates, and pairwise RTTs are
//! derived from great-circle distances with a fiber path-stretch factor,
//! clamped to the paper's stated intercontinental range.
//!
//! The evaluation subsets used in the paper are reproduced as selections of
//! city indices: [`CityDataset::europe21`], [`CityDataset::na_eu43`],
//! [`CityDataset::stellar56`], and [`CityDataset::global73`].

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Continental region a city belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    Europe,
    NorthAmerica,
    SouthAmerica,
    Asia,
    Oceania,
    Africa,
}

impl Region {
    /// All regions, in the order cities are generated.
    pub const ALL: [Region; 6] = [
        Region::Europe,
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::Asia,
        Region::Oceania,
        Region::Africa,
    ];

    /// Anchor coordinate (latitude, longitude) for the region's cluster.
    fn anchor(self) -> (f64, f64) {
        match self {
            Region::Europe => (50.0, 10.0),
            Region::NorthAmerica => (40.0, -95.0),
            Region::SouthAmerica => (-15.0, -55.0),
            Region::Asia => (30.0, 105.0),
            Region::Oceania => (-30.0, 145.0),
            Region::Africa => (5.0, 20.0),
        }
    }

    /// Spread of the cluster (degrees latitude / longitude).
    fn spread(self) -> (f64, f64) {
        match self {
            Region::Europe => (10.0, 15.0),
            Region::NorthAmerica => (10.0, 20.0),
            Region::SouthAmerica => (12.0, 10.0),
            Region::Asia => (15.0, 25.0),
            Region::Oceania => (8.0, 10.0),
            Region::Africa => (15.0, 15.0),
        }
    }

    /// Number of cities generated in this region (totals 220).
    fn count(self) -> usize {
        match self {
            Region::Europe => 60,
            Region::NorthAmerica => 50,
            Region::SouthAmerica => 20,
            Region::Asia => 45,
            Region::Oceania => 15,
            Region::Africa => 30,
        }
    }

    /// Short prefix used in generated city names.
    fn prefix(self) -> &'static str {
        match self {
            Region::Europe => "eu",
            Region::NorthAmerica => "na",
            Region::SouthAmerica => "sa",
            Region::Asia => "as",
            Region::Oceania => "oc",
            Region::Africa => "af",
        }
    }
}

/// A city: a named location with coordinates and a region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct City {
    /// Synthetic name, e.g. `eu-07`.
    pub name: String,
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Continental region.
    pub region: Region,
}

/// Earth's mean radius in kilometres.
const EARTH_RADIUS_KM: f64 = 6371.0;
/// Propagation speed in fiber, km per millisecond (~2/3 of c).
const FIBER_KM_PER_MS: f64 = 200.0;
/// Fiber routes are longer than great circles; multiply distances by this.
const PATH_STRETCH: f64 = 1.7;
/// Minimum / maximum intercontinental RTT reported by the paper (ms).
const INTER_MIN_MS: f64 = 150.0;
const INTER_MAX_MS: f64 = 250.0;
/// Minimum RTT between distinct cities (ms), models last-mile overhead.
const MIN_RTT_MS: f64 = 2.0;

/// A set of cities with deterministic pairwise RTTs.
#[derive(Debug, Clone)]
pub struct CityDataset {
    cities: Vec<City>,
}

impl CityDataset {
    /// Build the standard 220-city worldwide dataset (deterministic).
    pub fn worldwide() -> Self {
        Self::generate(0xC1717)
    }

    /// Build the dataset with a custom seed (mainly for tests that want a
    /// different but still deterministic layout).
    pub fn generate(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cities = Vec::new();
        for region in Region::ALL {
            let (alat, alon) = region.anchor();
            let (slat, slon) = region.spread();
            for i in 0..region.count() {
                let lat = alat + rng.gen_range(-slat..slat);
                let lon = alon + rng.gen_range(-slon..slon);
                cities.push(City {
                    name: format!("{}-{:02}", region.prefix(), i),
                    lat,
                    lon,
                    region,
                });
            }
        }
        CityDataset { cities }
    }

    /// Number of cities.
    pub fn len(&self) -> usize {
        self.cities.len()
    }

    /// True if the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.cities.is_empty()
    }

    /// Access a city by index.
    pub fn city(&self, idx: usize) -> &City {
        &self.cities[idx]
    }

    /// All cities.
    pub fn cities(&self) -> &[City] {
        &self.cities
    }

    /// Indices of all cities in a region, in generation order.
    pub fn region_indices(&self, region: Region) -> Vec<usize> {
        self.cities
            .iter()
            .enumerate()
            .filter(|(_, c)| c.region == region)
            .map(|(i, _)| i)
            .collect()
    }

    /// Great-circle distance between two cities in kilometres (haversine).
    pub fn distance_km(&self, a: usize, b: usize) -> f64 {
        let ca = &self.cities[a];
        let cb = &self.cities[b];
        haversine_km(ca.lat, ca.lon, cb.lat, cb.lon)
    }

    /// Round-trip time between two cities in milliseconds.
    ///
    /// Intra-region RTTs follow the distance model directly; inter-region
    /// RTTs are clamped into the paper's 150–250 ms intercontinental range.
    pub fn rtt_ms(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        let dist = self.distance_km(a, b) * PATH_STRETCH;
        let raw = 2.0 * dist / FIBER_KM_PER_MS;
        let same_region = self.cities[a].region == self.cities[b].region;
        if same_region {
            raw.max(MIN_RTT_MS)
        } else {
            raw.clamp(INTER_MIN_MS, INTER_MAX_MS)
        }
    }

    /// Full pairwise RTT matrix in milliseconds (row-major, len × len).
    pub fn rtt_matrix_ms(&self) -> Vec<f64> {
        let n = self.len();
        let mut m = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                m[a * n + b] = self.rtt_ms(a, b);
            }
        }
        m
    }

    /// RTT matrix restricted to a subset of city indices, in subset order.
    pub fn subset_rtt_matrix_ms(&self, subset: &[usize]) -> Vec<f64> {
        let n = subset.len();
        let mut m = vec![0.0; n * n];
        for (i, &a) in subset.iter().enumerate() {
            for (j, &b) in subset.iter().enumerate() {
                m[i * n + j] = self.rtt_ms(a, b);
            }
        }
        m
    }

    fn take_from_region(&self, region: Region, count: usize) -> Vec<usize> {
        let idx = self.region_indices(region);
        assert!(
            idx.len() >= count,
            "region {region:?} has only {} cities, requested {count}",
            idx.len()
        );
        idx.into_iter().take(count).collect()
    }

    /// The 21 European cities used for the Europe21 deployment (Fig 7, Fig 11, Fig 15).
    pub fn europe21(&self) -> Vec<usize> {
        self.take_from_region(Region::Europe, 21)
    }

    /// 43 cities across Europe and North America (Fig 9, NA-EU43).
    pub fn na_eu43(&self) -> Vec<usize> {
        let mut v = self.take_from_region(Region::Europe, 22);
        v.extend(self.take_from_region(Region::NorthAmerica, 21));
        v
    }

    /// 56 cities approximating the Stellar validator distribution (Fig 9,
    /// Stellar56): heavily weighted towards Europe and North America with a
    /// smaller Asian and Oceanian presence, matching the public validator map.
    pub fn stellar56(&self) -> Vec<usize> {
        let mut v = self.take_from_region(Region::Europe, 24);
        v.extend(self.take_from_region(Region::NorthAmerica, 18));
        v.extend(self.take_from_region(Region::Asia, 10));
        v.extend(self.take_from_region(Region::Oceania, 2));
        v.extend(self.take_from_region(Region::SouthAmerica, 2));
        v
    }

    /// 73 cities distributed worldwide (Fig 9, Global73).
    pub fn global73(&self) -> Vec<usize> {
        let mut v = self.take_from_region(Region::Europe, 20);
        v.extend(self.take_from_region(Region::NorthAmerica, 16));
        v.extend(self.take_from_region(Region::Asia, 16));
        v.extend(self.take_from_region(Region::SouthAmerica, 8));
        v.extend(self.take_from_region(Region::Oceania, 5));
        v.extend(self.take_from_region(Region::Africa, 8));
        v
    }

    /// Assign `n` replicas to cities drawn round-robin from a subset, as the
    /// paper does when the configuration size exceeds the number of cities.
    pub fn assign_round_robin(&self, subset: &[usize], n: usize) -> Vec<usize> {
        (0..n).map(|i| subset[i % subset.len()]).collect()
    }

    /// Assign `n` replicas to cities drawn uniformly at random from a subset
    /// (used for the "randomly distributed across the world" experiments).
    /// Replicas may share a city; see [`CityDataset::assign_distinct`] for
    /// sampling without replacement.
    pub fn assign_random(&self, subset: &[usize], n: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| *subset.choose(&mut rng).expect("non-empty city subset"))
            .collect()
    }

    /// Assign `n` replicas to `n` *distinct* cities drawn uniformly from a
    /// subset (one replica per location).
    ///
    /// # Panics
    /// If the subset holds fewer than `n` cities.
    pub fn assign_distinct(&self, subset: &[usize], n: usize, seed: u64) -> Vec<usize> {
        assert!(subset.len() >= n, "subset holds {} cities, need {n}", subset.len());
        let mut rng = StdRng::seed_from_u64(seed);
        subset
            .choose_multiple(&mut rng, n)
            .into_iter()
            .copied()
            .collect()
    }
}

/// Haversine great-circle distance in kilometres.
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let (lat1, lon1, lat2, lon2) = (
        lat1.to_radians(),
        lon1.to_radians(),
        lat2.to_radians(),
        lon2.to_radians(),
    );
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * a.sqrt().atan2((1.0 - a).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_220_cities() {
        let ds = CityDataset::worldwide();
        assert_eq!(ds.len(), 220);
        assert!(!ds.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CityDataset::worldwide();
        let b = CityDataset::worldwide();
        for i in 0..a.len() {
            assert_eq!(a.city(i).lat, b.city(i).lat);
            assert_eq!(a.city(i).lon, b.city(i).lon);
            assert_eq!(a.city(i).name, b.city(i).name);
        }
    }

    #[test]
    fn rtt_is_symmetric_and_zero_on_diagonal() {
        let ds = CityDataset::worldwide();
        for a in (0..ds.len()).step_by(37) {
            assert_eq!(ds.rtt_ms(a, a), 0.0);
            for b in (0..ds.len()).step_by(41) {
                assert!((ds.rtt_ms(a, b) - ds.rtt_ms(b, a)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn intercontinental_rtt_in_paper_range() {
        let ds = CityDataset::worldwide();
        let eu = ds.region_indices(Region::Europe);
        let asia = ds.region_indices(Region::Asia);
        let oce = ds.region_indices(Region::Oceania);
        for &a in eu.iter().take(5) {
            for &b in asia.iter().take(5).chain(oce.iter().take(5)) {
                let rtt = ds.rtt_ms(a, b);
                assert!((150.0..=250.0).contains(&rtt), "rtt {rtt} outside range");
            }
        }
    }

    #[test]
    fn intra_region_rtt_below_intercontinental_floor() {
        let ds = CityDataset::worldwide();
        let eu = ds.region_indices(Region::Europe);
        let mut max_intra: f64 = 0.0;
        for &a in &eu {
            for &b in &eu {
                max_intra = max_intra.max(ds.rtt_ms(a, b));
            }
        }
        assert!(max_intra > 0.0);
        assert!(max_intra < 150.0, "intra-Europe rtt {max_intra} too high");
    }

    #[test]
    fn evaluation_subsets_have_expected_sizes() {
        let ds = CityDataset::worldwide();
        assert_eq!(ds.europe21().len(), 21);
        assert_eq!(ds.na_eu43().len(), 43);
        assert_eq!(ds.stellar56().len(), 56);
        assert_eq!(ds.global73().len(), 73);
    }

    #[test]
    fn subsets_contain_unique_cities() {
        let ds = CityDataset::worldwide();
        for subset in [ds.europe21(), ds.na_eu43(), ds.stellar56(), ds.global73()] {
            let mut sorted = subset.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), subset.len(), "duplicate city in subset");
        }
    }

    #[test]
    fn round_robin_assignment_wraps() {
        let ds = CityDataset::worldwide();
        let subset = ds.europe21();
        let assign = ds.assign_round_robin(&subset, 25);
        assert_eq!(assign.len(), 25);
        assert_eq!(assign[0], assign[21]);
    }

    #[test]
    fn random_assignment_is_seed_deterministic() {
        let ds = CityDataset::worldwide();
        let subset = ds.global73();
        assert_eq!(
            ds.assign_random(&subset, 50, 7),
            ds.assign_random(&subset, 50, 7)
        );
        assert_ne!(
            ds.assign_random(&subset, 50, 7),
            ds.assign_random(&subset, 50, 8)
        );
    }

    #[test]
    fn distinct_assignment_never_repeats_a_city() {
        let ds = CityDataset::worldwide();
        let subset = ds.global73();
        let assign = ds.assign_distinct(&subset, 40, 9);
        assert_eq!(assign.len(), 40);
        let mut sorted = assign.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40, "cities must be distinct");
        assert!(assign.iter().all(|c| subset.contains(c)));
        assert_eq!(ds.assign_distinct(&subset, 40, 9), assign);
    }

    #[test]
    fn subset_rtt_matrix_matches_pairwise() {
        let ds = CityDataset::worldwide();
        let subset = ds.europe21();
        let m = ds.subset_rtt_matrix_ms(&subset);
        assert_eq!(m.len(), 21 * 21);
        assert_eq!(m[1], ds.rtt_ms(subset[0], subset[1])); // row 0, col 1
    }

    #[test]
    fn haversine_known_distance() {
        // London (51.5, -0.13) to Paris (48.85, 2.35) is ~344 km.
        let d = haversine_km(51.5, -0.13, 48.85, 2.35);
        assert!((300.0..400.0).contains(&d), "got {d}");
    }
}
