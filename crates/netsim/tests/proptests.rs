//! Property-based tests for the simulator substrate.

use netsim::{
    CityDataset, Duration, EventKind, EventQueue, EventScheduler, FaultPlan, HeapScheduler,
    SimTime, TimerWheel,
};
use proptest::prelude::*;

/// One step of the scheduler-equivalence driver, decoded from a raw tuple:
/// kinds 0–2 schedule (offsets cross bucket, level, and multi-level
/// boundaries), 3 cancels a random pending event, 4–5 pop.
#[derive(Debug, Clone)]
enum SchedOp {
    /// Schedule an event `offset` µs after the last popped instant.
    Schedule { offset: u64, target: usize },
    /// Cancel a still-pending event (index modulo the pending set).
    Cancel { pick: usize },
    /// Pop the earliest event and compare it across schedulers.
    Pop,
}

fn decode_op((kind, offset, pick): (u32, u64, usize)) -> SchedOp {
    match kind {
        0..=2 => SchedOp::Schedule {
            offset,
            target: pick % 7,
        },
        3 => SchedOp::Cancel { pick },
        _ => SchedOp::Pop,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events always come out of the queue in non-decreasing time order, and
    /// ties preserve insertion order.
    #[test]
    fn event_queue_is_time_ordered(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q: EventQueue<()> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i % 7, EventKind::Crash);
        }
        let mut last = SimTime::ZERO;
        let mut last_seq = None;
        while let Some(e) = q.pop() {
            prop_assert!(e.at >= last);
            if e.at == last {
                if let Some(s) = last_seq {
                    prop_assert!(e.seq > s);
                }
            }
            last = e.at;
            last_seq = Some(e.seq);
        }
    }

    /// Duration arithmetic never panics and saturates at zero.
    #[test]
    fn duration_arithmetic_is_total(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4, k in 1.0f64..3.0) {
        let da = Duration::from_micros(a);
        let db = Duration::from_micros(b);
        let _ = da + db;
        prop_assert_eq!((da - db).as_micros(), a.saturating_sub(b));
        prop_assert!(da.mul_f64(k) >= da);
    }

    /// City RTTs are symmetric, zero on the diagonal, and intercontinental
    /// pairs stay within the paper's 150–250 ms envelope.
    #[test]
    fn city_rtt_invariants(a in 0usize..220, b in 0usize..220) {
        let ds = CityDataset::worldwide();
        let ab = ds.rtt_ms(a, b);
        let ba = ds.rtt_ms(b, a);
        prop_assert!((ab - ba).abs() < 1e-9);
        if a == b {
            prop_assert_eq!(ab, 0.0);
        } else {
            prop_assert!(ab > 0.0);
            if ds.city(a).region != ds.city(b).region {
                prop_assert!((150.0..=250.0).contains(&ab));
            }
        }
    }

    /// The determinism contract, made executable: the timer wheel and the
    /// reference binary-heap scheduler, driven with identical random
    /// schedule/cancel/pop sequences, pop identical `(time, seq, target)`
    /// streams. Schedules are issued relative to the last popped instant,
    /// exactly as the engine does.
    #[test]
    fn wheel_matches_reference_heap(
        raw_ops in prop::collection::vec((0u32..6, 0u64..300_000, 0usize..1_000_000), 1..400),
    ) {
        let ops: Vec<SchedOp> = raw_ops.into_iter().map(decode_op).collect();
        let mut wheel: TimerWheel<()> = TimerWheel::new();
        let mut heap: HeapScheduler<()> = HeapScheduler::default();
        // Still-pending events: (seq, wheel handle, heap handle).
        let mut pending: Vec<(u64, u64, u64)> = Vec::new();
        let mut next_seq = 0u64;
        let mut now = 0u64;
        for op in ops {
            match op {
                SchedOp::Schedule { offset, target } => {
                    let at = SimTime::from_micros(now + offset);
                    let wh = wheel.schedule(at, target, EventKind::Crash);
                    let hh = heap.schedule(at, target, EventKind::Crash);
                    pending.push((next_seq, wh, hh));
                    next_seq += 1;
                }
                SchedOp::Cancel { pick } => {
                    if pending.is_empty() {
                        continue;
                    }
                    let (_, wh, hh) = pending.swap_remove(pick % pending.len());
                    prop_assert!(wheel.cancel(wh));
                    prop_assert!(heap.cancel(hh));
                }
                SchedOp::Pop => {
                    prop_assert_eq!(
                        EventScheduler::<()>::next_time(&mut wheel),
                        EventScheduler::<()>::next_time(&mut heap)
                    );
                    let (w, h) = (wheel.pop(), heap.pop());
                    match (w, h) {
                        (None, None) => prop_assert!(pending.is_empty()),
                        (Some(w), Some(h)) => {
                            prop_assert_eq!(w.at, h.at);
                            prop_assert_eq!(w.seq, h.seq);
                            prop_assert_eq!(w.target, h.target);
                            prop_assert!(w.at.as_micros() >= now, "time never goes backwards");
                            now = w.at.as_micros();
                            let idx = pending
                                .iter()
                                .position(|&(seq, _, _)| seq == w.seq)
                                .expect("popped event was pending");
                            pending.swap_remove(idx);
                        }
                        (w, h) => prop_assert!(false, "divergence: wheel {w:?} vs heap {h:?}"),
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.len(), pending.len());
        }
        // Drain both to the end: the tails must agree too.
        while let Some(w) = wheel.pop() {
            let h = heap.pop().expect("heap drained early");
            prop_assert_eq!((w.at, w.seq, w.target), (h.at, h.seq, h.target));
        }
        prop_assert!(heap.pop().is_none());
    }

    /// A fault plan without faults never drops or alters a message.
    #[test]
    fn empty_fault_plan_is_identity(now in 0u64..1_000_000, base in 0u64..1_000_000) {
        let plan = FaultPlan::none();
        let d = plan.effective_delay(
            SimTime::from_micros(now), 0, 1, Duration::from_micros(base));
        prop_assert_eq!(d, Some(Duration::from_micros(base)));
    }

    /// Inflation never reduces delay; delays only add.
    #[test]
    fn faults_never_speed_messages_up(factor in 1.0f64..3.0, extra in 0u64..10_000, base in 1u64..100_000) {
        let mut plan = FaultPlan::none();
        plan.inflate_outgoing(0, factor);
        plan.add_node_fault(0, netsim::NodeFault::OutgoingDelay(Duration::from_micros(extra)));
        let d = plan
            .effective_delay(SimTime::ZERO, 0, 1, Duration::from_micros(base))
            .unwrap();
        prop_assert!(d >= Duration::from_micros(base));
    }
}
