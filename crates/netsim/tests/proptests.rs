//! Property-based tests for the simulator substrate.

use netsim::{CityDataset, Duration, EventKind, EventQueue, FaultPlan, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events always come out of the queue in non-decreasing time order, and
    /// ties preserve insertion order.
    #[test]
    fn event_queue_is_time_ordered(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q: EventQueue<()> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i % 7, EventKind::Crash);
        }
        let mut last = SimTime::ZERO;
        let mut last_seq = None;
        while let Some(e) = q.pop() {
            prop_assert!(e.at >= last);
            if e.at == last {
                if let Some(s) = last_seq {
                    prop_assert!(e.seq > s);
                }
            }
            last = e.at;
            last_seq = Some(e.seq);
        }
    }

    /// Duration arithmetic never panics and saturates at zero.
    #[test]
    fn duration_arithmetic_is_total(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4, k in 1.0f64..3.0) {
        let da = Duration::from_micros(a);
        let db = Duration::from_micros(b);
        let _ = da + db;
        prop_assert_eq!((da - db).as_micros(), a.saturating_sub(b));
        prop_assert!(da.mul_f64(k) >= da);
    }

    /// City RTTs are symmetric, zero on the diagonal, and intercontinental
    /// pairs stay within the paper's 150–250 ms envelope.
    #[test]
    fn city_rtt_invariants(a in 0usize..220, b in 0usize..220) {
        let ds = CityDataset::worldwide();
        let ab = ds.rtt_ms(a, b);
        let ba = ds.rtt_ms(b, a);
        prop_assert!((ab - ba).abs() < 1e-9);
        if a == b {
            prop_assert_eq!(ab, 0.0);
        } else {
            prop_assert!(ab > 0.0);
            if ds.city(a).region != ds.city(b).region {
                prop_assert!((150.0..=250.0).contains(&ab));
            }
        }
    }

    /// A fault plan without faults never drops or alters a message.
    #[test]
    fn empty_fault_plan_is_identity(now in 0u64..1_000_000, base in 0u64..1_000_000) {
        let plan = FaultPlan::none();
        let d = plan.effective_delay(
            SimTime::from_micros(now), 0, 1, Duration::from_micros(base));
        prop_assert_eq!(d, Some(Duration::from_micros(base)));
    }

    /// Inflation never reduces delay; delays only add.
    #[test]
    fn faults_never_speed_messages_up(factor in 1.0f64..3.0, extra in 0u64..10_000, base in 1u64..100_000) {
        let mut plan = FaultPlan::none();
        plan.inflate_outgoing(0, factor);
        plan.add_node_fault(0, netsim::NodeFault::OutgoingDelay(Duration::from_micros(extra)));
        let d = plan
            .effective_delay(SimTime::ZERO, 0, 1, Duration::from_micros(base))
            .unwrap();
        prop_assert!(d >= Duration::from_micros(base));
    }
}
