//! Cross-crate integration tests: exercise the full pipeline from the
//! geographic dataset through the protocols and the OptiLog monitors.

use optilog_suite::*;

use kauri::{KauriBinsPolicy, KauriConfig, TreePolicy};
use hotstuff::{HotStuffConfig, Pacemaker};
use lab::{run_hotstuff, run_kauri, PbftHarness, PbftHarnessConfig};
use netsim::{CityDataset, Duration, FaultPlan, MatrixLatency, SimTime};
use optiaware::OptiAwarePolicy;
use optilog::{AnnealingParams, SuspicionMonitorParams};
use optilog::pipeline::OptiLogInstance;
use optitree::{search_tree, tree_score, OptiTreePolicy, TreeSearchSpace};
use pbft::{AwarePolicy, StaticPolicy};
use rsm::SystemConfig;

fn europe_rtt(n: usize) -> Vec<f64> {
    let ds = CityDataset::worldwide();
    let subset = ds.europe21();
    let assignment = ds.assign_round_robin(&subset, n);
    let mut m = vec![0.0; n * n];
    for a in 0..n {
        for b in 0..n {
            m[a * n + b] = ds.rtt_ms(assignment[a], assignment[b]);
        }
    }
    m
}

// ---- per-substrate smoke tests: every protocol commits over the city
// ---- dataset's latency matrix, end to end through netsim.

#[test]
fn smoke_pbft_commits_over_city_matrix() {
    let n = 7;
    let config = PbftHarnessConfig::new(n, 2, 2, europe_rtt(n)).run_for(Duration::from_secs(5));
    let report = PbftHarness::run(&config, "smoke-pbft", |_| Box::new(StaticPolicy));
    assert!(
        report.replica_summary.committed_blocks > 0,
        "pbft committed nothing: {report:?}"
    );
}

#[test]
fn smoke_hotstuff_commits_over_city_matrix() {
    let n = 7;
    let rtt = europe_rtt(n);
    for pacemaker in [Pacemaker::Fixed { leader: 0 }, Pacemaker::RoundRobin] {
        let mut cfg = HotStuffConfig::new(n, pacemaker);
        cfg.run_for = Duration::from_secs(5);
        let report = run_hotstuff(&cfg, Box::new(MatrixLatency::from_rtt_millis(n, &rtt)), FaultPlan::none());
        assert!(
            report.summary.committed_blocks > 0,
            "hotstuff ({pacemaker:?}) committed nothing"
        );
    }
}

#[test]
fn smoke_kauri_commits_over_city_matrix() {
    let n = 13;
    let rtt = europe_rtt(n);
    let mut cfg = KauriConfig::new(n);
    cfg.run_for = Duration::from_secs(5);
    let report = run_kauri(
        &cfg,
        Box::new(MatrixLatency::from_rtt_millis(n, &rtt)),
        FaultPlan::none(),
        |_| Box::new(KauriBinsPolicy::new(n, 3, 1)) as Box<dyn TreePolicy>,
    );
    assert!(
        report.summary.committed_blocks > 0,
        "kauri committed nothing"
    );
}

#[test]
fn pbft_over_city_latencies_commits_client_requests() {
    let n = 7;
    let config = PbftHarnessConfig::new(n, 2, 3, europe_rtt(n)).run_for(Duration::from_secs(15));
    let report = PbftHarness::run(&config, "integration", |_| Box::new(StaticPolicy));
    assert!(report.replica_summary.committed_blocks > 10);
    assert!(report.client_completed.iter().all(|&c| c > 3));
}

#[test]
fn optiaware_recovers_from_delay_attack_while_aware_does_not() {
    let n = 7;
    let f = 2;
    let rtt = europe_rtt(n);
    // The attacker is the replica Aware's optimisation would pick as leader,
    // so the Pre-Prepare delay attack actually hits the optimised path.
    let attacker = pbft::score::optimize_configuration(&rtt, n, f, &(0..n).collect::<Vec<_>>(), &[], 1)
        .0
        .leader;
    let attack = SimTime::from_secs(40);
    let run = Duration::from_secs(100);
    let optimize_after = SimTime::from_secs(15);

    let aware_cfg = PbftHarnessConfig::new(n, f, 3, rtt.clone())
        .run_for(run)
        .with_delay_attacker(attacker, Duration::from_millis(400), attack);
    let aware = PbftHarness::run(&aware_cfg, "aware", |_| {
        Box::new(AwarePolicy::new(n, f, optimize_after))
    });

    let opti_cfg = PbftHarnessConfig::new(n, f, 3, rtt.clone())
        .run_for(run)
        .with_delay_attacker(attacker, Duration::from_millis(400), attack);
    let opti = PbftHarness::run(&opti_cfg, "optiaware", |id| {
        Box::new(OptiAwarePolicy::new(id, n, f, 1.0, optimize_after))
    });

    // By the end of the run OptiAware must be no worse than Aware: either it
    // detected the attack and reassigned the leader, or its suspicion-driven
    // role assignment kept the attacker out of the leader role altogether.
    let aware_late = aware.mean_client_latency(80.0, 100.0);
    let opti_late = opti.mean_client_latency(80.0, 100.0);
    // Aware has no suspicion mechanism: the attacker keeps the leader role
    // and clients keep paying the 400 ms Pre-Prepare delay.
    assert!(
        aware_late > 400.0,
        "Aware should stay degraded, got {aware_late:.1}ms"
    );
    // OptiAware's suspicion pipeline must excise the attacker and recover to
    // a small multiple of the attack-free latency (Fig 7).
    assert!(
        opti_late < aware_late * 0.5,
        "OptiAware {opti_late:.1}ms should recover well below Aware {aware_late:.1}ms"
    );
    // The recovery must come from a reconfiguration after the attack began
    // that strips the attacker of the leader role.
    let post_attack: Vec<_> = opti
        .reconfigurations
        .iter()
        .filter(|&&(t, _)| t >= attack.as_secs_f64())
        .collect();
    assert!(
        !post_attack.is_empty(),
        "no reconfiguration after the attack: {:?}",
        opti.reconfigurations
    );
    assert!(
        post_attack.iter().all(|&&(_, leader)| leader != attacker),
        "attacker {attacker} regained the leader role: {post_attack:?}"
    );
}

#[test]
fn optitree_outperforms_random_kauri_trees_on_global_deployment() {
    let n = 43;
    let ds = CityDataset::worldwide();
    let subset = ds.global73();
    let assignment = ds.assign_round_robin(&subset, n);
    let mut rtt = vec![0.0; n * n];
    for a in 0..n {
        for b in 0..n {
            rtt[a * n + b] = ds.rtt_ms(assignment[a], assignment[b]);
        }
    }
    let system = SystemConfig::new(n);
    let k = system.quorum();
    let space = TreeSearchSpace {
        n,
        branch: system.tree_branch_factor(),
        matrix_rtt_ms: rtt.clone(),
        candidates: (0..n).collect(),
        k,
    };
    let (_, opti_score) = search_tree(
        &space,
        AnnealingParams {
            iterations: 6_000,
            ..Default::default()
        },
        3,
    );
    let random_avg: f64 = (0..10)
        .map(|s| tree_score(&kauri::Tree::random(n, system.tree_branch_factor(), s), &rtt, n, k))
        .sum::<f64>()
        / 10.0;
    assert!(
        opti_score < random_avg,
        "OptiTree {opti_score} should beat random {random_avg}"
    );
}

#[test]
fn tree_protocols_commit_and_pipeline_on_emulated_wan() {
    // A worldwide deployment: tree overlays with pipelining pay off once
    // inter-replica latencies are large (the Global73 setting of Fig 9).
    let n = 21;
    let ds = CityDataset::worldwide();
    let subset = ds.global73();
    let assignment = ds.assign_round_robin(&subset, n);
    let mut rtt = vec![0.0; n * n];
    for a in 0..n {
        for b in 0..n {
            rtt[a * n + b] = ds.rtt_ms(assignment[a], assignment[b]);
        }
    }
    let system = SystemConfig::new(n);

    let mut hs_cfg = HotStuffConfig::new(n, Pacemaker::Fixed { leader: 0 });
    hs_cfg.run_for = Duration::from_secs(20);
    let hs = run_hotstuff(&hs_cfg, Box::new(MatrixLatency::from_rtt_millis(n, &rtt)), FaultPlan::none());

    let mut kauri_cfg = KauriConfig::new(n);
    kauri_cfg.run_for = Duration::from_secs(20);
    let kauri = run_kauri(
        &kauri_cfg,
        Box::new(MatrixLatency::from_rtt_millis(n, &rtt)),
        FaultPlan::none(),
        |_| Box::new(KauriBinsPolicy::new(n, 4, 1)) as Box<dyn TreePolicy>,
    );

    let mut opti_cfg = KauriConfig::new(n);
    opti_cfg.run_for = Duration::from_secs(20);
    let rtt_clone = rtt.clone();
    let opti = run_kauri(
        &opti_cfg,
        Box::new(MatrixLatency::from_rtt_millis(n, &rtt)),
        FaultPlan::none(),
        move |_| Box::new(OptiTreePolicy::new(system, rtt_clone.clone(), 7)) as Box<dyn TreePolicy>,
    );

    assert!(hs.summary.committed_blocks > 10);
    assert!(kauri.summary.committed_blocks > 10);
    assert!(opti.summary.committed_blocks > 10);
    // Pipelined tree protocols are at least competitive with HotStuff on
    // throughput at WAN latencies (the simulator does not charge the leader's
    // CPU/bandwidth, which is where most of Kauri's advantage comes from).
    assert!(kauri.summary.throughput_ops > hs.summary.throughput_ops * 0.8);
    // OptiTree's selected tree should not be slower than Kauri's random tree.
    assert!(opti.summary.mean_latency_ms <= kauri.summary.mean_latency_ms * 1.1);
}

#[test]
fn optilog_instances_converge_across_replicas() {
    use optilog::{LatencyVector, Measurement, Suspicion, SuspicionKind};
    let n = 7;
    let keyring = crypto::Keyring::new(1, n);
    let measurements: Vec<Measurement> = vec![
        Measurement::Latency(LatencyVector::new(0, vec![0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0])),
        Measurement::Suspicion(Suspicion {
            kind: SuspicionKind::Slow,
            accuser: 2,
            accused: 5,
            round: 3,
            phase: 1,
            accuser_is_leader: false,
        }),
        Measurement::Suspicion(Suspicion {
            kind: SuspicionKind::False,
            accuser: 5,
            accused: 2,
            round: 3,
            phase: 1,
            accuser_is_leader: false,
        }),
    ];
    let mut instances: Vec<OptiLogInstance> = (0..n)
        .map(|_| OptiLogInstance::new(keyring.clone(), SuspicionMonitorParams::new(n, 2)))
        .collect();
    for m in &measurements {
        for inst in instances.iter_mut() {
            inst.on_measurement(m);
        }
    }
    let selections: Vec<_> = instances.iter_mut().map(|i| i.selection()).collect();
    let digests: Vec<_> = instances.iter().map(|i| i.log().prefix_digest()).collect();
    assert!(selections.windows(2).all(|w| w[0] == w[1]));
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(selections[0].estimate_u, 1);
}
