//! # optilog-suite — umbrella crate for the OptiLog reproduction
//!
//! This crate re-exports the public API of every crate in the workspace so
//! examples, integration tests, and downstream users can depend on a single
//! entry point:
//!
//! * [`runtime`] — the runtime-agnostic node API ([`runtime::Node`],
//!   [`runtime::Context`]), wire framing, and the real-clock localhost
//!   cluster runtime.
//! * [`netsim`] — deterministic discrete-event network simulator and the
//!   geographic latency dataset.
//! * [`crypto`] — simulated signatures, quorum certificates, and proofs of
//!   misbehavior.
//! * [`rsm`] — commands, blocks, applications, the append-only log, and
//!   run statistics.
//! * [`traffic`] — open-loop geo-distributed client load: arrival
//!   processes, the leader-side admission queue, goodput accounting.
//! * [`configlog`] — the replicated role-configuration log: epoch-monotone
//!   adoption of weight/tree configurations and suspicion-pair evidence,
//!   ordered through each substrate's own commit path.
//! * [`optilog`] — the sensor/monitor framework: latency matrix, suspicion
//!   graph, candidate selection, simulated annealing, configuration monitor.
//! * [`pbft`] — the BFT-SMaRt/Wheat/Aware substrate.
//! * [`hotstuff`] — chained HotStuff baselines.
//! * [`kauri`] — the tree-overlay substrate with pipelining and
//!   t-bounded-conformity reconfiguration.
//! * [`optiaware`] — OptiLog applied to Aware (§5).
//! * [`optitree`] — OptiLog applied to Kauri (§6).
//! * [`lab`] — declarative scenarios, adversary scripts, and the
//!   simulation harnesses that drive each substrate through `netsim`.
//!
//! See `examples/quickstart.rs` for a first end-to-end run.

pub use configlog;
pub use crypto;
pub use hotstuff;
pub use kauri;
pub use lab;
pub use netsim;
pub use optiaware;
pub use optilog;
pub use optitree;
pub use pbft;
pub use rsm;
pub use runtime;
pub use traffic;
