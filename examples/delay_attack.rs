//! The Fig 7 scenario in miniature: a Byzantine leader delays its proposals;
//! Aware keeps suffering while OptiAware's suspicion pipeline detects the
//! attack and reassigns the leader role.
//!
//! Run with: `cargo run --example delay_attack`

use netsim::{Duration, SimTime};
use optiaware::OptiAwarePolicy;
use lab::{PbftHarness, PbftHarnessConfig};
use pbft::{AwarePolicy, ReconfigPolicy};

fn main() {
    let n = 7;
    let f = 2;
    // Replica 0 sits in a well-connected position (it will be chosen as the
    // optimised leader) but turns malicious halfway through the run. The
    // fast cluster holds six of the seven replicas: after OptiAware excises
    // the attacker, a full quorum (2f + 1 = 5) of fast replicas remains, so
    // recovery reaches the Fig 7 optimum (~60 ms) instead of being dragged
    // to a 140 ms replica the way a 4-strong cluster was.
    let mut rtt = vec![0.0; n * n];
    for a in 0..n {
        for b in 0..n {
            if a != b {
                let fast = a < 6 && b < 6;
                rtt[a * n + b] = if fast { 20.0 } else { 140.0 };
            }
        }
    }
    let attack_start = SimTime::from_secs(40);
    let optimize_after = SimTime::from_secs(15);
    let run = Duration::from_secs(90);

    let run_system = |name: &str, factory: &dyn Fn(usize) -> Box<dyn ReconfigPolicy>| {
        let config = PbftHarnessConfig::new(n, f, 4, rtt.clone())
            .run_for(run)
            .with_delay_attacker(0, Duration::from_millis(400), attack_start);
        let report = PbftHarness::run(&config, "delay-attack", |id| factory(id));
        let recovered = report.mean_client_latency(70.0, 90.0);
        println!(
            "{name:<10}  optimized {:>7.1} ms   under attack {:>7.1} ms   after recovery {:>7.1} ms   reconfigs {:?}",
            report.mean_client_latency(20.0, 40.0),
            report.mean_client_latency(42.0, 60.0),
            recovered,
            report.reconfigurations,
        );
        recovered
    };

    println!("== Pre-Prepare delay attack at t=40s (delay 400 ms) ==");
    let aware = run_system("Aware", &|_| {
        Box::new(AwarePolicy::new(n, f, optimize_after)) as Box<dyn ReconfigPolicy>
    });
    let opti = run_system("OptiAware", &|id| {
        Box::new(OptiAwarePolicy::new(id, n, f, 1.0, optimize_after)) as Box<dyn ReconfigPolicy>
    });
    println!("OptiAware reconfigures away from replica 0 and recovers the fast-cluster");
    println!("optimum; Aware has no suspicion mechanism and stays degraded.");
    assert!(
        opti < 100.0,
        "OptiAware should recover to the Fig 7 optimum (~60 ms), got {opti:.1} ms"
    );
    assert!(
        aware > 400.0,
        "Aware should stay degraded under the 400 ms delay, got {aware:.1} ms"
    );
}
