//! OptiTree recovering from a crashed tree root: the Fig 15 scenario.
//!
//! Run with: `cargo run --example tree_reconfiguration`

use kauri::{KauriConfig, TreePolicy};
use lab::run_kauri;
use netsim::{CityDataset, Duration, FaultPlan, MatrixLatency, SimTime};
use optitree::OptiTreePolicy;
use rsm::SystemConfig;

fn main() {
    let n = 21;
    let system = SystemConfig::new(n);
    let cities = CityDataset::worldwide();
    let subset = cities.europe21();
    let assignment = cities.assign_round_robin(&subset, n);
    let mut rtt = vec![0.0; n * n];
    for a in 0..n {
        for b in 0..n {
            rtt[a * n + b] = cities.rtt_ms(assignment[a], assignment[b]);
        }
    }

    // Find which replica OptiTree picks as the first root, then crash it
    // 15 seconds into the run.
    let first_root = OptiTreePolicy::new(system, rtt.clone(), 7)
        .next_tree(n, system.tree_branch_factor())
        .root;
    let mut faults = FaultPlan::none();
    faults.crash(first_root, SimTime::from_secs(15));

    let mut cfg = KauriConfig::new(n).without_pipelining();
    cfg.run_for = Duration::from_secs(45);
    cfg.reconfig_delay = Duration::from_secs(1); // the simulated-annealing search

    let rtt_clone = rtt.clone();
    let report = run_kauri(
        &cfg,
        Box::new(MatrixLatency::from_rtt_millis(n, &rtt)),
        faults,
        move |_| Box::new(OptiTreePolicy::new(system, rtt_clone.clone(), 7)) as Box<dyn TreePolicy>,
    );

    println!("root {first_root} crashed at t=15s; reconfigurations: {}", report.reconfigurations);
    println!("throughput per second:");
    for (sec, ops) in report.throughput_timeline.iter().enumerate() {
        println!("  t={sec:>2}s  {ops:>8} op/s");
    }
    println!("mean latency: {:.1} ms", report.summary.mean_latency_ms);
}
