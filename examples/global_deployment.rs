//! Selecting a low-latency tree for a 73-city worldwide deployment and
//! comparing it against Kauri's random trees and a star topology — the §7.4
//! headline result in one example.
//!
//! Run with: `cargo run --example global_deployment`

use kauri::Tree;
use netsim::CityDataset;
use optilog::AnnealingParams;
use optitree::{search_tree, tree_score, TreeSearchSpace};
use rsm::SystemConfig;

fn main() {
    let n = 73;
    let system = SystemConfig::new(n);
    let b = system.tree_branch_factor();
    let cities = CityDataset::worldwide();
    let subset = cities.global73();
    let assignment = cities.assign_round_robin(&subset, n);
    let mut rtt = vec![0.0; n * n];
    for a in 0..n {
        for b2 in 0..n {
            rtt[a * n + b2] = cities.rtt_ms(assignment[a], assignment[b2]);
        }
    }
    let k = system.quorum();

    // OptiTree: simulated annealing over the latency matrix.
    let space = TreeSearchSpace {
        n,
        branch: b,
        matrix_rtt_ms: rtt.clone(),
        candidates: (0..n).collect(),
        k,
    };
    let (opti_tree, opti_score) = search_tree(
        &space,
        AnnealingParams {
            iterations: 20_000,
            ..Default::default()
        },
        42,
    );

    // Kauri: average over random trees.
    let random_avg: f64 = (0..25)
        .map(|seed| tree_score(&Tree::random(n, b, seed), &rtt, n, k))
        .sum::<f64>()
        / 25.0;
    // HotStuff-style star rooted at the same leader.
    let star_score = tree_score(&Tree::star(opti_tree.root, n), &rtt, n, k);

    println!("== predicted time to collect a quorum of votes (n = 73, worldwide) ==");
    println!("OptiTree (simulated annealing): {opti_score:>8.0} ms");
    println!("Kauri (random trees, mean):     {random_avg:>8.0} ms");
    println!("Star topology (HotStuff):       {star_score:>8.0} ms");
    println!();
    println!(
        "OptiTree improves on random trees by {:.0}%",
        (1.0 - opti_score / random_avg) * 100.0
    );
    println!("internal nodes chosen: {:?}", opti_tree.internal_nodes());
}
