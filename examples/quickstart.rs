//! Quickstart: replicate a key-value store with the PBFT substrate over a
//! simulated European deployment, then inspect throughput and latency.
//!
//! Run with: `cargo run --example quickstart`

use lab::{PbftHarness, PbftHarnessConfig};
use netsim::{CityDataset, Duration};
use pbft::StaticPolicy;
use rsm::{Application, Command, KvApp};
use rsm::app::KvOp;

fn main() {
    // 1. Build a latency matrix for 7 replicas placed in European cities.
    let cities = CityDataset::worldwide();
    let subset = cities.europe21();
    let n = 7;
    let assignment = cities.assign_round_robin(&subset, n);
    let mut rtt = vec![0.0; n * n];
    for a in 0..n {
        for b in 0..n {
            rtt[a * n + b] = cities.rtt_ms(assignment[a], assignment[b]);
        }
    }

    // 2. Run the replicated state machine for 20 virtual seconds with four
    //    co-located clients issuing requests in a closed loop.
    let config = PbftHarnessConfig::new(n, 2, 4, rtt).run_for(Duration::from_secs(20));
    let report = PbftHarness::run(&config, "quickstart", |_| Box::new(StaticPolicy));

    println!("== consensus summary ==");
    println!("{}", report.replica_summary.render("pbft / europe (n=7)"));
    println!(
        "client latency (steady state): {:.1} ms",
        report.mean_client_latency(2.0, 20.0)
    );
    for (i, done) in report.client_completed.iter().enumerate() {
        println!("client {i}: {done} requests completed");
    }

    // 3. The replicated application itself is pluggable; here is the same
    //    key-value state machine executing a committed command sequence
    //    directly (every replica runs this deterministically).
    let mut app = KvApp::new();
    for (i, (key, value)) in [("region", "europe"), ("replicas", "7"), ("protocol", "pbft")]
        .iter()
        .enumerate()
    {
        let cmd = Command::new(
            0,
            i as u64,
            KvOp::Put {
                key: (*key).into(),
                value: (*value).into(),
            }
            .encode(),
        );
        app.execute(&cmd);
    }
    println!("replicated store holds {} keys, digest {}", app.len(), app.state_digest());
}
