//! Offline stand-in for `proptest`.
//!
//! Crates.io is unreachable in the build environment, so this crate supplies
//! the subset of the proptest API the workspace's property tests use: the
//! [`Strategy`] trait (ranges, tuples, `any::<T>()`, and
//! [`collection::vec`]), the `proptest!` macro with
//! `#![proptest_config(ProptestConfig::with_cases(N))]`, and the
//! `prop_assert!` family.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case reports its seed and inputs via the
//!   panic message instead of minimizing them;
//! * generation is driven by a fixed per-test seed (derived from the test
//!   name), so runs are fully deterministic.

use rand::rngs::StdRng;
pub use rand::SeedableRng;

/// Number of cases and (reserved) future knobs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// `any::<T>()` — the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draw a uniformly random value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A `Vec` of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.min >= self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A collection size: exact or half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Exclusive upper bound (`min` itself for exact sizes).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: r.end() + 1,
        }
    }
}

/// Namespace mirror so `prop::collection::vec` resolves.
pub mod prop {
    pub use crate::collection;
}

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Stable per-test seed so failures reproduce across runs (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Assert inside a property; reports the failing message on panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut rng =
                    <::rand::rngs::StdRng as $crate::SeedableRng>::seed_from_u64(seed);
                for case in 0..config.cases {
                    let run = || {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                        $body
                    };
                    if let Err(panic) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest {}: failed at case {case} (seed {seed:#x})",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}
