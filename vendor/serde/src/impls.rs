//! `Serialize` / `Deserialize` impls for the std types used by the workspace.

use crate::{Deserialize, Error, Number, Serialize, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::Hash;

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::expected(stringify!($t), v)),
                    _ => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

uint_impl!(u8, u16, u32, u64, usize);

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Num(Number::I64(v))
                } else {
                    Value::Num(Number::U64(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => n
                        .as_i64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| Error::expected(stringify!($t), v)),
                    _ => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::F64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(n.as_f64() as $t),
                    _ => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-char string", v)),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::expected("null", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

// Shared pointers serialize transparently, like serde's `rc` feature.
// Deserialization allocates a fresh (unshared) allocation; sharing is a
// process-local optimisation that has no meaning on the wire.
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::rc::Rc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error(format!("expected array of length {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) => {
                        let expected = [$($n),+].len();
                        if items.len() != expected {
                            return Err(Error(format!(
                                "expected {expected}-tuple, got array of {}",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(Error::expected("tuple (array)", v)),
                }
            }
        }
    )*};
}

tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// Maps serialize as arrays of [key, value] pairs so non-string keys (the
// common case in this workspace) stay exact through JSON.
macro_rules! map_impl {
    ($name:ident, $($bound:tt)+) => {
        impl<K: Serialize, V: Serialize> Serialize for $name<K, V> {
            fn to_value(&self) -> Value {
                Value::Arr(
                    self.iter()
                        .map(|(k, v)| Value::Arr(vec![k.to_value(), v.to_value()]))
                        .collect(),
                )
            }
        }
        impl<K: Deserialize + $($bound)+, V: Deserialize> Deserialize for $name<K, V> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) => items
                        .iter()
                        .map(|pair| <(K, V)>::from_value(pair))
                        .collect(),
                    _ => Err(Error::expected("map (array of pairs)", v)),
                }
            }
        }
    };
}

map_impl!(BTreeMap, Ord);
map_impl!(HashMap, Eq + Hash);

macro_rules! set_impl {
    ($name:ident, $($bound:tt)+) => {
        impl<T: Serialize> Serialize for $name<T> {
            fn to_value(&self) -> Value {
                Value::Arr(self.iter().map(Serialize::to_value).collect())
            }
        }
        impl<T: Deserialize + $($bound)+> Deserialize for $name<T> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) => items.iter().map(T::from_value).collect(),
                    _ => Err(Error::expected("set (array)", v)),
                }
            }
        }
    };
}

set_impl!(BTreeSet, Ord);
set_impl!(HashSet, Eq + Hash);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
