//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of serde the workspace uses: the [`Serialize`] / [`Deserialize`]
//! traits, `#[derive(Serialize, Deserialize)]` (re-exported from the sibling
//! `serde_derive` proc-macro crate), and impls for the std types that appear
//! in derived structs. Instead of serde's visitor-based zero-copy data model,
//! everything funnels through a concrete JSON-like [`Value`] tree; the
//! sibling `serde_json` stand-in renders and parses that tree as real JSON.
//! Semantics mirror serde's external enum representation so derived types
//! round-trip exactly.

mod impls;
mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

/// Serialization error (unused by the Value model but kept for API shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Build an error describing a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Error {
        Error(format!("expected {what}, got {}", got.kind()))
    }
}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the data-model tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from the data-model tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Compatibility alias module: `serde::de::DeserializeOwned`.
pub mod de {
    /// In this stand-in every [`crate::Deserialize`] is owned.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Compatibility alias module: `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}
