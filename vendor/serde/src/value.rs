//! The JSON-like data-model tree shared by `serde` and `serde_json`.

/// A number: integers are kept exact, floats as `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// Coerce to `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// Exact `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// Exact `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }
}

/// A serialized value. Maps preserve insertion order (derive order), which
/// keeps output deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (from `Option::None` / unit).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(Number),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Map(_) => "object",
        }
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}
