//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde` crate's [`Value`] tree as real JSON. Supports exactly the entry
//! points the workspace calls — [`to_string`], [`to_vec`], [`from_slice`],
//! [`from_str`] — with full round-trip fidelity for everything the vendored
//! derive can produce.

use serde::{Deserialize, Number, Serialize, Value};

pub use serde::Error;

/// Serialize to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    T::from_value(&v)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(n, out),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) if v.is_finite() => {
            // `{}` on f64 round-trips through parse exactly; integral floats
            // print without a fraction, which `parse_number` still accepts.
            out.push_str(&v.to_string());
        }
        // JSON has no inf/NaN; callers in this workspace pre-encode them,
        // but degrade gracefully rather than emitting invalid JSON.
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_string()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_string()))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F64(f)))
            .map_err(|e| Error(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\\c\n").unwrap(), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\\\c\\n\"").unwrap(), "a\"b\\c\n");
    }

    #[test]
    fn collection_round_trips() {
        let v = vec![(1usize, 2.5f64), (3, 4.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2.5],[3,4]]");
        assert_eq!(from_str::<Vec<(usize, f64)>>(&json).unwrap(), v);

        let opt: Option<u8> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u8>>("9").unwrap(), Some(9));

        let arr: [u8; 4] = [1, 2, 3, 255];
        let json = to_string(&arr).unwrap();
        assert_eq!(from_str::<[u8; 4]>(&json).unwrap(), arr);
    }

    #[test]
    fn map_round_trips_with_integer_keys() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(3usize, vec![1.0f64, 2.0]);
        m.insert(9, vec![]);
        let json = to_string(&m).unwrap();
        let back: std::collections::BTreeMap<usize, Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn large_u64_is_exact() {
        let v = u64::MAX - 3;
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), v);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &f in &[0.1, 1.0e9, -2.5e-8, 123456.789012345] {
            let json = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), f);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<String>("\"oops").is_err());
        assert!(from_slice::<u64>(&[0xFF, 0xFE]).is_err());
    }
}
