//! Distribution sampling (stand-in for the `rand_distr` / `rand 0.8`
//! `distributions` surface the workspace uses).
//!
//! Only the exponential distribution is implemented: it is the inter-arrival
//! law of a Poisson process, which the `traffic` crate's open-loop arrival
//! generators (and their thinning-based non-homogeneous variants) sample on
//! every request. Centralising it here keeps call sites from hand-rolling
//! `-ln(u)/λ` — and from getting the open/closed interval edge wrong, where
//! `u = 1.0` would produce `ln(0) = -inf`.

use crate::RngCore;

/// A value distribution that can be sampled with any [`RngCore`].
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The exponential distribution `Exp(λ)`, mean `1/λ`.
///
/// Sampling uses inversion: `-ln(1 - u) / λ` with `u` uniform in `[0, 1)`,
/// so the argument of `ln` lies in `(0, 1]` and the sample is always finite
/// and non-negative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Create `Exp(λ)`.
    ///
    /// # Panics
    /// If `lambda` is not strictly positive and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "Exp rate must be positive and finite, got {lambda}"
        );
        Exp { lambda }
    }

    /// The rate parameter λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The distribution mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random bits → uniform in [0, 1); 1 - u ∈ (0, 1].
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        -(1.0 - unit).ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn exp_samples_are_finite_and_nonnegative() {
        let d = Exp::new(3.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!(x.is_finite() && x >= 0.0, "bad sample {x}");
        }
    }

    #[test]
    fn exp_mean_matches_one_over_lambda() {
        for lambda in [0.5, 2.0, 250.0] {
            let d = Exp::new(lambda);
            let mut rng = StdRng::seed_from_u64(7);
            let n = 200_000;
            let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
            let mean = sum / n as f64;
            let expect = 1.0 / lambda;
            assert!(
                (mean - expect).abs() < expect * 0.02,
                "λ={lambda}: mean {mean} vs expected {expect}"
            );
        }
    }

    #[test]
    fn exp_sampling_is_seed_deterministic() {
        let d = Exp::new(100.0);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| d.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exp_rejects_nonpositive_rate() {
        Exp::new(0.0);
    }
}
