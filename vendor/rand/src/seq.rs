//! Slice helpers: `shuffle`, `choose`, `choose_multiple`, and distinct index
//! sampling (`index::sample`).

use crate::{RngCore, SampleRange};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher-Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements, uniformly without replacement, in random
    /// order. Returns fewer when the slice is shorter than `amount` (the
    /// real crate's behaviour; it never panics).
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> Vec<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (0..self.len()).sample_single(rng);
            self.get(i)
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(&self, rng: &mut R, amount: usize) -> Vec<&T> {
        index::sample(rng, self.len(), amount.min(self.len()))
            .into_iter()
            .map(|i| &self[i])
            .collect()
    }
}

/// Distinct-index sampling, mirroring `rand::seq::index`.
pub mod index {
    use crate::{RngCore, SampleRange};

    /// `amount` distinct indices drawn uniformly from `0..length`, in random
    /// order, via a partial Fisher-Yates shuffle.
    ///
    /// # Panics
    /// If `amount > length` (matching the real crate).
    pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> Vec<usize> {
        assert!(
            amount <= length,
            "cannot sample {amount} distinct indices from 0..{length}"
        );
        let mut indices: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = (i..length).sample_single(rng);
            indices.swap(i, j);
        }
        indices.truncate(amount);
        indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(13);
        let v: Vec<u32> = (0..20).collect();
        let picked = v.choose_multiple(&mut rng, 8);
        assert_eq!(picked.len(), 8);
        let mut seen: Vec<u32> = picked.iter().map(|&&x| x).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8, "elements must be distinct");
        // Asking for more than the slice holds returns the whole slice.
        assert_eq!(v.choose_multiple(&mut rng, 100).len(), 20);
        let empty: [u8; 0] = [];
        assert!(empty.choose_multiple(&mut rng, 3).is_empty());
    }

    #[test]
    fn index_sample_is_distinct_and_deterministic() {
        let mut a = StdRng::seed_from_u64(14);
        let mut b = StdRng::seed_from_u64(14);
        let sa = index::sample(&mut a, 100, 10);
        let sb = index::sample(&mut b, 100, 10);
        assert_eq!(sa, sb);
        let mut sorted = sa.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(sorted.iter().all(|&i| i < 100));
        // Sampling everything is a permutation.
        let mut all = index::sample(&mut a, 5, 5);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "distinct indices")]
    fn index_sample_rejects_oversized_amount() {
        let mut rng = StdRng::seed_from_u64(15);
        index::sample(&mut rng, 3, 4);
    }

    #[test]
    fn choose_covers_and_respects_empty() {
        let mut rng = StdRng::seed_from_u64(12);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }
}
