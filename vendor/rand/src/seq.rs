//! Slice helpers: `shuffle` and `choose`.

use crate::{RngCore, SampleRange};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher-Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (0..self.len()).sample_single(rng);
            self.get(i)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_covers_and_respects_empty() {
        let mut rng = StdRng::seed_from_u64(12);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }
}
