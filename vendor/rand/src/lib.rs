//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of the `rand` 0.8 API it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! `gen_range` / `gen_bool`, [`seq::SliceRandom`] for `shuffle` / `choose`,
//! and [`distributions::Exp`] for exponential inter-arrival sampling.
//! The generator is xoshiro256++ seeded through SplitMix64 — the
//! same construction `rand`'s `SmallRng` family uses — which is deterministic
//! across platforms and of ample quality for simulation workloads. It is
//! **not** cryptographically secure; nothing in this workspace needs it to be.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it through SplitMix64 exactly like
    /// `rand` 0.8 does, so fixed seeds stay stable.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A value from `T`'s standard distribution (floats: uniform `[0, 1)`).
    fn gen<T: StandardDist>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 random bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The standard distribution for a type: integers uniform over the full
/// domain, floats uniform in `[0, 1)`.
pub trait StandardDist: Sized {
    /// Draw one standard sample.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardDist for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardDist for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardDist for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDist for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(v)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128) % span) as $t;
                start.wrapping_add(v)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let x = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_probability_is_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits = {hits}");
    }
}
