//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!`, and `black_box` — with a simple
//! mean-of-samples wall-clock measurement instead of criterion's statistical
//! machinery. `cargo bench --no-run` compiles these exactly like the real
//! crate; running them prints one line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 10, &mut f);
        self
    }
}

/// A named benchmark id, optionally parameterized.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id (group name supplies the function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    /// End the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` for this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    // Warm-up / calibration sample.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    // Aim for ~10ms per sample, capped to keep slow simulation benches quick.
    let iters = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("bench: {label:<50} {mean_ns:>14.1} ns/iter ({samples} samples x {iters} iters)");
}

/// Collect benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
