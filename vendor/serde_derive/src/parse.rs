//! Token-level parser for the shapes `#[derive(Serialize, Deserialize)]` is
//! applied to in this workspace. Delimiters other than `<`/`>` arrive
//! pre-nested as `Group` token trees, so only angle-bracket depth needs
//! explicit tracking.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Fields of a struct or enum variant.
#[derive(Debug)]
pub enum Fields {
    /// `struct S;` or `Variant,`
    Unit,
    /// `struct S(A, B);` or `Variant(A, B)` — only the arity matters.
    Tuple(usize),
    /// `struct S { a: A }` or `Variant { a: A }` — field names in order.
    Named(Vec<String>),
}

/// One enum variant.
#[derive(Debug)]
pub struct Variant {
    pub name: String,
    pub fields: Fields,
}

/// The body of the item.
#[derive(Debug)]
pub enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

/// A parsed `struct` or `enum` item.
#[derive(Debug)]
pub struct Item {
    pub name: String,
    /// Plain type-parameter names (`T`, `C`, ...).
    pub type_params: Vec<String>,
    pub body: Body,
}

/// Parse the derive input.
pub fn parse(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    let type_params = parse_generics(&tokens, &mut i)?;

    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        return Err(format!("`where` clauses are not supported (on `{name}`)"));
    }

    let body = match kind {
        "struct" => Body::Struct(parse_struct_body(&tokens, &mut i)?),
        _ => Body::Enum(parse_enum_body(&tokens, &mut i)?),
    };

    Ok(Item {
        name,
        type_params,
        body,
    })
}

/// Skip leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Parse `<...>` after the item name, returning the type-parameter names.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Result<Vec<String>, String> {
    let mut params = Vec::new();
    if !matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Ok(params);
    }
    *i += 1;
    let mut depth = 1usize;
    // A parameter name is the ident found at depth 1 right after `<` or a
    // depth-1 comma; anything after a `:` (bounds) or inside nested angles is
    // skipped.
    let mut at_param_start = true;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        *i += 1;
                        return Ok(params);
                    }
                }
                ',' if depth == 1 => at_param_start = true,
                '\'' => {
                    return Err("lifetime parameters are not supported".to_string());
                }
                ':' if depth == 1 => at_param_start = false,
                _ => {}
            },
            TokenTree::Ident(id) if depth == 1 && at_param_start => {
                let s = id.to_string();
                if s == "const" {
                    return Err("const generics are not supported".to_string());
                }
                params.push(s);
                at_param_start = false;
            }
            _ => {}
        }
        *i += 1;
    }
    Err("unterminated generic parameter list".to_string())
}

fn parse_struct_body(tokens: &[TokenTree], i: &mut usize) -> Result<Fields, String> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Fields::Unit),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            parse_named_fields(g.stream())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Fields::Tuple(count_tuple_fields(g.stream())))
        }
        other => Err(format!("expected struct body, found {other:?}")),
    }
}

/// Parse `{ a: A, b: B }` into field names.
fn parse_named_fields(stream: TokenStream) -> Result<Fields, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(tok) = tokens.get(i) else { break };
        let TokenTree::Ident(id) = tok else {
            return Err(format!("expected field name, found {tok:?}"));
        };
        names.push(id.to_string());
        i += 1;
        if !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("expected `:` after field `{}`", names.last().unwrap()));
        }
        i += 1;
        skip_type(&tokens, &mut i);
        // Optional trailing comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(Fields::Named(names))
}

/// Advance past one type, stopping at a depth-0 comma (not consumed).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Count the fields of `( A, B, ... )`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_enum_body(tokens: &[TokenTree], i: &mut usize) -> Result<Vec<Variant>, String> {
    let group = match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => return Err(format!("expected enum body, found {other:?}")),
    };
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(tok) = tokens.get(i) else { break };
        let TokenTree::Ident(id) = tok else {
            return Err(format!("expected variant name, found {tok:?}"));
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                parse_named_fields(g.stream())?
            }
            _ => Fields::Unit,
        };
        // Explicit discriminant (`Variant = 3`): the value is irrelevant to
        // the name-based representation; skip to the next depth-0 comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&tokens, &mut i);
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}
