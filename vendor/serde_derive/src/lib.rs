//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! Value-tree data model of the vendored `serde` crate. Because crates.io is
//! unreachable, `syn`/`quote` are unavailable; the input item is parsed
//! directly from the compiler's `proc_macro::TokenStream` by [`parse`], and
//! the impls are emitted as source strings.
//!
//! Supported shapes (everything the workspace derives on): unit / tuple /
//! named-field structs, enums mixing unit, tuple, and struct variants, and
//! plain type parameters (bounds are added per-impl, serde-style). Lifetimes,
//! const generics, `where` clauses, and `#[serde(...)]` attributes are not
//! supported and fail loudly rather than silently mis-serializing.

use proc_macro::TokenStream;

mod codegen;
mod parse;

/// Derive `serde::Serialize` (Value-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse::parse(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    codegen::serialize_impl(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (Value-tree flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse::parse(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    codegen::deserialize_impl(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", format!("serde_derive stand-in: {msg}"))
        .parse()
        .expect("compile_error! parses")
}
