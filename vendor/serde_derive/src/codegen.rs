//! Source-string code generation for the two derives. Enum representation
//! follows serde's external tagging: unit variants serialize as their name
//! string, data variants as a single-entry map `{"Variant": ...}`.

use crate::parse::{Body, Fields, Item, Variant};

/// `<T, C>` twice: once for `impl<...>`, once for `Name<...>`, plus a where
/// clause binding every type parameter to `bound`.
fn generics(item: &Item, bound: &str) -> (String, String, String) {
    if item.type_params.is_empty() {
        return (String::new(), String::new(), String::new());
    }
    let list = item.type_params.join(", ");
    let wheres = item
        .type_params
        .iter()
        .map(|p| format!("{p}: {bound}"))
        .collect::<Vec<_>>()
        .join(", ");
    (format!("<{list}>"), format!("<{list}>"), format!("where {wheres}"))
}

/// Generate the `Serialize` impl.
pub fn serialize_impl(item: &Item) -> String {
    let (impl_g, ty_g, where_c) = generics(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => match fields {
            Fields::Unit => "::serde::Value::Null".to_string(),
            Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Fields::Tuple(n) => {
                let items = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("::serde::Value::Arr(vec![{items}])")
            }
            Fields::Named(names) => {
                let pairs = names
                    .iter()
                    .map(|f| {
                        format!(
                            "({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("::serde::Value::Map(vec![{pairs}])")
            }
        },
        Body::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| serialize_variant_arm(name, v))
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_g} ::serde::Serialize for {name}{ty_g} {where_c} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn serialize_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        Fields::Unit => format!(
            "{enum_name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
        ),
        Fields::Tuple(n) => {
            let binds = (0..*n).map(|i| format!("f{i}")).collect::<Vec<_>>().join(", ");
            let inner = if *n == 1 {
                "::serde::Serialize::to_value(f0)".to_string()
            } else {
                let items = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("::serde::Value::Arr(vec![{items}])")
            };
            format!(
                "{enum_name}::{vname}({binds}) => ::serde::Value::Map(vec![({vname:?}.to_string(), {inner})]),"
            )
        }
        Fields::Named(names) => {
            let binds = names.join(", ");
            let pairs = names
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{enum_name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![({vname:?}.to_string(), ::serde::Value::Map(vec![{pairs}]))]),"
            )
        }
    }
}

/// Generate the `Deserialize` impl.
pub fn deserialize_impl(item: &Item) -> String {
    let (impl_g, ty_g, where_c) = generics(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => match fields {
            Fields::Unit => format!(
                "match v {{\n\
                     ::serde::Value::Null => Ok({name}),\n\
                     other => Err(::serde::Error::expected(\"null\", other)),\n\
                 }}"
            ),
            Fields::Tuple(1) => {
                format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
            }
            Fields::Tuple(n) => {
                let items = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "match v {{\n\
                         ::serde::Value::Arr(items) if items.len() == {n} => Ok({name}({items})),\n\
                         other => Err(::serde::Error::expected(\"array of {n}\", other)),\n\
                     }}"
                )
            }
            Fields::Named(names) => {
                let fields = named_fields_from(name, names, "v");
                format!("Ok({name} {{ {fields} }})")
            }
        },
        Body::Enum(variants) => deserialize_enum_body(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_g} ::serde::Deserialize for {name}{ty_g} {where_c} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

/// `a: from_value(src.get("a").ok_or(...)?)?, b: ...`
fn named_fields_from(type_name: &str, names: &[String], src: &str) -> String {
    names
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({src}.get({f:?}).ok_or_else(|| \
                 ::serde::Error(format!(\"missing field `{f}` for `{type_name}`\")))?)?"
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
        .collect::<Vec<_>>()
        .join("\n");
    let data_arms = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .map(|v| deserialize_variant_arm(name, v))
        .collect::<Vec<_>>()
        .join("\n");
    format!(
        "match v {{\n\
             ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(::serde::Error(format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
             }},\n\
             ::serde::Value::Map(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, inner) = &pairs[0];\n\
                 match tag.as_str() {{\n\
                     {data_arms}\n\
                     other => Err(::serde::Error(format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                 }}\n\
             }}\n\
             other => Err(::serde::Error::expected(\"enum `{name}`\", other)),\n\
         }}"
    )
}

fn deserialize_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        Fields::Unit => unreachable!("unit variants handled in the Str arm"),
        Fields::Tuple(1) => format!(
            "{vname:?} => Ok({enum_name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
        ),
        Fields::Tuple(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{vname:?} => match inner {{\n\
                     ::serde::Value::Arr(items) if items.len() == {n} => Ok({enum_name}::{vname}({items})),\n\
                     other => Err(::serde::Error::expected(\"array of {n}\", other)),\n\
                 }},"
            )
        }
        Fields::Named(names) => {
            let fields = named_fields_from(&format!("{enum_name}::{vname}"), names, "inner");
            format!("{vname:?} => Ok({enum_name}::{vname} {{ {fields} }}),")
        }
    }
}
